#include "cli/commands.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <memory>

#include "classify/cba.h"
#include "classify/cross_validation.h"
#include "classify/evaluator.h"
#include "classify/model_io.h"
#include "classify/rcbt.h"
#include "cli/flags.h"
#include "mine/carpenter.h"
#include "mine/charm.h"
#include "mine/closet.h"
#include "mine/farmer.h"
#include "mine/hybrid_miner.h"
#include "mine/miner_common.h"
#include "mine/topk_miner.h"
#include "scale/mmap_dataset.h"
#include "scale/shard_planner.h"
#include "scale/stream_reader.h"
#include "scale/topk_merge.h"
#include "synth/generator.h"
#include "util/safe_math.h"

namespace topkrgs {

namespace {

StatusOr<DatasetProfile> ProfileByName(const std::string& name) {
  if (name == "ALL") return DatasetProfile::ALL();
  if (name == "LC") return DatasetProfile::LC();
  if (name == "OC") return DatasetProfile::OC();
  if (name == "PC") return DatasetProfile::PC();
  if (name == "TINY") return DatasetProfile::Tiny(7);
  return Status::InvalidArgument("unknown profile '" + name +
                                 "' (ALL, LC, OC, PC, TINY)");
}

/// CLI int64 flag -> uint32 option field, clamped below at `floor`. The
/// flag layer parses into int64; every narrowing into a miner/planner
/// option goes through CheckedCast so an oversized value is a flag error,
/// not a silent truncation (a --k of 2^32+5 used to mine with k=5).
StatusOr<uint32_t> FlagU32(int64_t value, int64_t floor, const char* what) {
  return CheckedCast<uint32_t>(std::max(floor, value), what);
}

/// Resolves --minsup / --minsup-frac against the consequent class size.
StatusOr<uint32_t> ResolveMinsup(const FlagParser& flags,
                                 uint32_t class_rows) {
  auto minsup = flags.GetInt("minsup", 0);
  if (!minsup.ok()) return minsup.status();
  auto frac = flags.GetDouble("minsup-frac", 0.7);
  if (!frac.ok()) return frac.status();
  if (minsup.value() > 0) {
    return CheckedCast<uint32_t>(minsup.value(), "--minsup");
  }
  if (frac.value() <= 0.0 || frac.value() > 1.0) {
    return Status::InvalidArgument("--minsup-frac must be in (0, 1]");
  }
  return MinSupportFromFrac(frac.value(), class_rows);
}

void PrintRuleGroup(const Pipeline& pipeline, const ContinuousDataset& raw,
                    const RuleGroup& group, size_t max_items) {
  std::string antecedent;
  size_t printed = 0;
  group.antecedent.ForEach([&](size_t item) {
    if (printed >= max_items) return;
    if (!antecedent.empty()) antecedent += " AND ";
    // NOLINT(cast: ForEach yields bit positions < num_items, a uint32)
    const auto id = static_cast<ItemId>(item);
    antecedent += pipeline.discretization.ItemName(raw, id);
    ++printed;
  });
  const size_t total = group.antecedent.Count();
  if (total > max_items) {
    antecedent += " AND ... (" + std::to_string(total - max_items) + " more)";
  }
  std::printf("  IF %s THEN class %d  (sup %u, conf %.1f%%)\n",
              antecedent.c_str(), int{group.consequent},
              group.support, 100.0 * group.confidence());
}

}  // namespace

int ExitCodeForStatus(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk:
      return 0;
    case StatusCode::kInvalidArgument:
      return 2;
    case StatusCode::kNotFound:
      return 3;
    case StatusCode::kIOError:
      return 4;
    case StatusCode::kOutOfRange:
      return 5;
    case StatusCode::kFailedPrecondition:
      return 6;
    case StatusCode::kTimeout:
      return 7;
    case StatusCode::kResourceExhausted:
      return 8;
    case StatusCode::kDeadlineExceeded:
      return 9;
  }
  return 1;
}

Status RunGenerateCommand(const std::vector<std::string>& args) {
  auto flags_or = FlagParser::Parse(args);
  if (!flags_or.ok()) return flags_or.status();
  const FlagParser& flags = flags_or.value();
  TOPKRGS_RETURN_NOT_OK(
      flags.CheckKnown({"profile", "seed", "train", "test"}));

  auto profile_or = ProfileByName(flags.GetString("profile", "TINY"));
  if (!profile_or.ok()) return profile_or.status();
  DatasetProfile profile = profile_or.value();
  auto seed = flags.GetInt("seed", static_cast<int64_t>(profile.seed));
  if (!seed.ok()) return seed.status();
  profile.seed = static_cast<uint64_t>(seed.value());

  auto train_path = flags.GetRequired("train");
  if (!train_path.ok()) return train_path.status();

  GeneratedData data = GenerateMicroarray(profile);
  TOPKRGS_RETURN_NOT_OK(data.train.WriteTsv(train_path.value()));
  std::printf("wrote %u train rows x %u genes to %s\n", data.train.num_rows(),
              data.train.num_genes(), train_path.value().c_str());
  if (flags.Has("test")) {
    const std::string test_path = flags.GetString("test", "");
    TOPKRGS_RETURN_NOT_OK(data.test.WriteTsv(test_path));
    std::printf("wrote %u test rows to %s\n", data.test.num_rows(),
                test_path.c_str());
  }
  return Status::OK();
}

Status RunMineCommand(const std::vector<std::string>& args) {
  auto flags_or = FlagParser::Parse(args);
  if (!flags_or.ok()) return flags_or.status();
  const FlagParser& flags = flags_or.value();
  TOPKRGS_RETURN_NOT_OK(flags.CheckKnown({"data", "algorithm", "consequent",
                                          "minsup", "minsup-frac", "k",
                                          "minconf", "budget", "max-print",
                                          "threads", "warmup-nodes"}));

  auto data_path = flags.GetRequired("data");
  if (!data_path.ok()) return data_path.status();
  auto raw_or = ContinuousDataset::ReadTsv(data_path.value());
  if (!raw_or.ok()) return raw_or.status();
  const ContinuousDataset& raw = raw_or.value();

  Pipeline pipeline = PreparePipeline(raw, raw);
  const DiscreteDataset& data = pipeline.train;

  auto consequent = flags.GetInt("consequent", 1);
  if (!consequent.ok()) return consequent.status();
  if (consequent.value() < 0 || consequent.value() >= data.num_classes()) {
    return Status::InvalidArgument("--consequent out of range");
  }
  // NOLINT(cast: < num_classes <= kMaxClasses = 256 checked above)
  const ClassLabel cls = static_cast<ClassLabel>(consequent.value());
  const uint32_t class_rows = data.ClassCounts()[cls];
  if (class_rows == 0) {
    return Status::InvalidArgument("no rows of the requested class");
  }
  auto minsup = ResolveMinsup(flags, class_rows);
  if (!minsup.ok()) return minsup.status();
  auto k = flags.GetInt("k", 5);
  if (!k.ok()) return k.status();
  auto minconf = flags.GetDouble("minconf", 0.9);
  if (!minconf.ok()) return minconf.status();
  auto budget = flags.GetDouble("budget", 30.0);
  if (!budget.ok()) return budget.status();
  auto max_print = flags.GetInt("max-print", 10);
  if (!max_print.ok()) return max_print.status();
  auto threads = flags.GetInt("threads", 1);
  if (!threads.ok()) return threads.status();
  if (threads.value() < 0) {
    return Status::InvalidArgument("--threads must be >= 0 (0 = all cores)");
  }
  auto warmup_nodes = flags.GetInt("warmup-nodes", -1);
  if (!warmup_nodes.ok()) return warmup_nodes.status();
  if (warmup_nodes.value() < -1) {
    return Status::InvalidArgument(
        "--warmup-nodes must be >= -1 (-1 = auto, 0 = off)");
  }

  std::printf("dataset: %u rows, %u items (%u genes selected); class %d has "
              "%u rows; minsup %u\n",
              data.num_rows(), data.num_items(),
              pipeline.discretization.num_selected_genes(),
              int{cls}, class_rows, minsup.value());

  const std::string algorithm = flags.GetString("algorithm", "topk");
  std::vector<RuleGroupPtr> to_print;
  MinerStats stats;
  if (algorithm == "topk" || algorithm == "hybrid") {
    TopkMinerOptions opt;
    auto k32 = FlagU32(k.value(), 1, "--k");
    if (!k32.ok()) return k32.status();
    opt.k = k32.value();
    opt.min_support = minsup.value();
    opt.deadline = Deadline(budget.value());
    auto threads32 = FlagU32(threads.value(), 0, "--threads");
    if (!threads32.ok()) return threads32.status();
    opt.threads = threads32.value();
    opt.warmup_nodes = warmup_nodes.value();
    const TopkResult result = algorithm == "topk"
                                  ? MineTopkRGS(data, cls, opt)
                                  : MineTopkRGSHybrid(data, cls, opt);
    stats = result.stats;
    to_print = result.DistinctGroups();
    std::printf("top-%u covering rule groups: %zu distinct groups\n", opt.k,
                to_print.size());
  } else if (algorithm == "farmer" || algorithm == "charm" ||
             algorithm == "closet") {
    MiningResult result;
    if (algorithm == "farmer") {
      FarmerOptions opt;
      opt.min_support = minsup.value();
      opt.min_confidence = minconf.value();
      opt.deadline = Deadline(budget.value());
      result = MineFarmer(data, cls, opt);
    } else if (algorithm == "charm") {
      CharmOptions opt;
      opt.min_support = minsup.value();
      opt.deadline = Deadline(budget.value());
      result = MineCharm(data, cls, opt);
    } else {
      ClosetOptions opt;
      opt.min_support = minsup.value();
      opt.deadline = Deadline(budget.value());
      result = MineCloset(data, cls, opt);
    }
    stats = result.stats;
    std::printf("%s found %zu rule groups%s\n", algorithm.c_str(),
                result.groups.size(),
                result.stats.timed_out ? " (budget hit; partial)" : "");
    std::sort(result.groups.begin(), result.groups.end(),
              [](const RuleGroup& a, const RuleGroup& b) {
                return CompareSignificance(a.support, a.antecedent_support,
                                           b.support, b.antecedent_support) > 0;
              });
    for (const RuleGroup& g : result.groups) {
      to_print.push_back(std::make_shared<const RuleGroup>(g));
      // max(0, ·): a negative --max-print must clamp, not wrap to SIZE_MAX.
      if (to_print.size() >=
          static_cast<size_t>(std::max<int64_t>(0, max_print.value()))) {
        break;
      }
    }
  } else if (algorithm == "carpenter") {
    CarpenterOptions opt;
    opt.min_support = minsup.value();
    opt.deadline = Deadline(budget.value());
    const CarpenterResult result = MineCarpenter(data, opt);
    std::printf("carpenter found %zu closed patterns%s (class-agnostic)\n",
                result.patterns.size(),
                result.stats.timed_out ? " (budget hit; partial)" : "");
    std::printf("search: %llu nodes in %.3fs\n",
                static_cast<unsigned long long>(result.stats.nodes_visited),
                result.stats.seconds);
    return Status::OK();
  } else {
    return Status::InvalidArgument("unknown --algorithm '" + algorithm + "'");
  }

  const size_t limit =
      std::min<size_t>(to_print.size(),
                       static_cast<size_t>(std::max<int64_t>(0, max_print.value())));
  for (size_t i = 0; i < limit; ++i) {
    PrintRuleGroup(pipeline, raw, *to_print[i], 4);
  }
  std::printf("search: %llu nodes in %.3fs%s\n",
              static_cast<unsigned long long>(stats.nodes_visited),
              stats.seconds, stats.timed_out ? " (budget hit)" : "");
  return Status::OK();
}

Status RunClassifyCommand(const std::vector<std::string>& args) {
  auto flags_or = FlagParser::Parse(args);
  if (!flags_or.ok()) return flags_or.status();
  const FlagParser& flags = flags_or.value();
  TOPKRGS_RETURN_NOT_OK(flags.CheckKnown(
      {"train", "test", "model", "k", "nl", "minsup-frac", "save-model",
       "save-discretization", "load-model", "load-discretization"}));

  auto test_path = flags.GetRequired("test");
  if (!test_path.ok()) return test_path.status();
  auto test_or = ContinuousDataset::ReadTsv(test_path.value());
  if (!test_or.ok()) return test_or.status();
  const ContinuousDataset& test_raw = test_or.value();

  const std::string model_kind = flags.GetString("model", "rcbt");
  if (model_kind != "rcbt" && model_kind != "cba") {
    return Status::InvalidArgument("--model must be rcbt or cba");
  }

  if (flags.Has("load-model")) {
    // Apply a persisted model: needs the matching discretization.
    auto disc_path = flags.GetRequired("load-discretization");
    if (!disc_path.ok()) return disc_path.status();
    auto disc_or = LoadDiscretization(disc_path.value());
    if (!disc_or.ok()) return disc_or.status();
    // A loaded discretization is untrusted relative to the test matrix: it
    // may reference genes the matrix does not have. Gate before Apply.
    TOPKRGS_RETURN_NOT_OK(disc_or.value().CheckCompatible(test_raw));
    const DiscreteDataset test = disc_or.value().Apply(test_raw);

    const std::string model_path = flags.GetString("load-model", "");
    // Rule antecedents and discretized rows must live in the same item
    // universe; mismatched files would hit the bitset universe-mismatch
    // abort inside Predict, so reject the pair up front.
    const auto check_universe = [&](uint32_t model_items) {
      if (model_items != disc_or.value().num_items()) {
        return Status::FailedPrecondition(
            "model expects " + std::to_string(model_items) +
            " items but the discretization defines " +
            std::to_string(disc_or.value().num_items()));
      }
      return Status::OK();
    };
    EvalOutcome eval;
    if (model_kind == "rcbt") {
      uint32_t model_items = 0;
      auto model_or = LoadRcbtClassifier(model_path, &model_items);
      if (!model_or.ok()) return model_or.status();
      TOPKRGS_RETURN_NOT_OK(check_universe(model_items));
      const RcbtClassifier& clf = model_or.value();
      eval = EvaluateDiscrete(test, [&](const Bitset& items, bool* dflt) {
        const auto pred = clf.Predict(items);
        *dflt = pred.used_default;
        return pred.label;
      });
    } else {
      uint32_t model_items = 0;
      auto model_or = LoadCbaClassifier(model_path, &model_items);
      if (!model_or.ok()) return model_or.status();
      TOPKRGS_RETURN_NOT_OK(check_universe(model_items));
      const CbaClassifier& clf = model_or.value();
      eval = EvaluateDiscrete(test, [&](const Bitset& items, bool* dflt) {
        return clf.Predict(items, dflt);
      });
    }
    std::printf("%s (loaded): accuracy %.2f%% (%u/%u), default used %u\n",
                model_kind.c_str(), 100.0 * eval.accuracy(), eval.correct,
                eval.total, eval.default_used);
    return Status::OK();
  }

  auto train_path = flags.GetRequired("train");
  if (!train_path.ok()) return train_path.status();
  auto train_or = ContinuousDataset::ReadTsv(train_path.value());
  if (!train_or.ok()) return train_or.status();
  if (train_or.value().num_genes() != test_raw.num_genes()) {
    return Status::FailedPrecondition(
        "train has " + std::to_string(train_or.value().num_genes()) +
        " genes but test has " + std::to_string(test_raw.num_genes()));
  }

  Pipeline pipeline = PreparePipeline(train_or.value(), test_raw);
  auto frac = flags.GetDouble("minsup-frac", 0.7);
  if (!frac.ok()) return frac.status();
  auto k = flags.GetInt("k", 10);
  if (!k.ok()) return k.status();
  auto nl = flags.GetInt("nl", 20);
  if (!nl.ok()) return nl.status();

  auto k32 = FlagU32(k.value(), 1, "--k");
  if (!k32.ok()) return k32.status();
  auto nl32 = FlagU32(nl.value(), 1, "--nl");
  if (!nl32.ok()) return nl32.status();

  EvalOutcome eval;
  if (model_kind == "rcbt") {
    RcbtOptions opt;
    opt.k = k32.value();
    opt.nl = nl32.value();
    opt.min_support_frac = frac.value();
    opt.item_scores = pipeline.item_scores;
    RcbtClassifier clf = RcbtClassifier::Train(pipeline.train, opt);
    eval = EvaluateDiscrete(pipeline.test, [&](const Bitset& items, bool* d) {
      const auto pred = clf.Predict(items);
      *d = pred.used_default;
      return pred.label;
    });
    if (flags.Has("save-model")) {
      TOPKRGS_RETURN_NOT_OK(SaveRcbtClassifier(
          clf, pipeline.train.num_items(), flags.GetString("save-model", "")));
    }
  } else {
    CbaOptions opt;
    opt.min_support_frac = frac.value();
    opt.item_scores = pipeline.item_scores;
    CbaClassifier clf = TrainCba(pipeline.train, opt);
    eval = EvaluateDiscrete(pipeline.test, [&](const Bitset& items, bool* d) {
      return clf.Predict(items, d);
    });
    if (flags.Has("save-model")) {
      TOPKRGS_RETURN_NOT_OK(SaveCbaClassifier(
          clf, pipeline.train.num_items(), flags.GetString("save-model", "")));
    }
  }
  if (flags.Has("save-discretization")) {
    TOPKRGS_RETURN_NOT_OK(SaveDiscretization(
        pipeline.discretization, flags.GetString("save-discretization", "")));
  }
  std::printf("%s: accuracy %.2f%% (%u/%u), default used %u (%u errors)\n",
              model_kind.c_str(), 100.0 * eval.accuracy(), eval.correct,
              eval.total, eval.default_used, eval.default_errors);
  return Status::OK();
}

Status RunCvCommand(const std::vector<std::string>& args) {
  auto flags_or = FlagParser::Parse(args);
  if (!flags_or.ok()) return flags_or.status();
  const FlagParser& flags = flags_or.value();
  TOPKRGS_RETURN_NOT_OK(flags.CheckKnown(
      {"data", "model", "folds", "seed", "k", "nl", "minsup-frac"}));

  auto data_path = flags.GetRequired("data");
  if (!data_path.ok()) return data_path.status();
  auto raw_or = ContinuousDataset::ReadTsv(data_path.value());
  if (!raw_or.ok()) return raw_or.status();

  const std::string model_kind = flags.GetString("model", "rcbt");
  if (model_kind != "rcbt" && model_kind != "cba") {
    return Status::InvalidArgument("--model must be rcbt or cba");
  }
  auto folds = flags.GetInt("folds", 5);
  if (!folds.ok()) return folds.status();
  if (folds.value() < 2) {
    return Status::InvalidArgument("--folds must be >= 2");
  }
  auto seed = flags.GetInt("seed", 1);
  if (!seed.ok()) return seed.status();
  auto frac = flags.GetDouble("minsup-frac", 0.7);
  if (!frac.ok()) return frac.status();
  auto k = flags.GetInt("k", 10);
  if (!k.ok()) return k.status();
  auto nl = flags.GetInt("nl", 20);
  if (!nl.ok()) return nl.status();
  auto k32 = FlagU32(k.value(), 1, "--k");
  if (!k32.ok()) return k32.status();
  auto nl32 = FlagU32(nl.value(), 1, "--nl");
  if (!nl32.ok()) return nl32.status();
  auto folds32 = FlagU32(folds.value(), 2, "--folds");
  if (!folds32.ok()) return folds32.status();

  // Fold over the RAW data and refit the discretization inside every fold:
  // fitting cuts on all rows before splitting would leak the held-out
  // labels into the item definitions.
  const ContinuousDataset& raw = raw_or.value();
  std::vector<ClassLabel> labels(raw.num_rows());
  for (RowId r = 0; r < raw.num_rows(); ++r) labels[r] = raw.label(r);
  const auto fold_of = StratifiedFolds(
      labels, folds32.value(), static_cast<uint64_t>(seed.value()));

  CrossValidationResult result;
  for (uint32_t fold = 0; fold < folds.value(); ++fold) {
    ContinuousDataset train(raw.num_genes());
    ContinuousDataset test(raw.num_genes());
    std::vector<double> row(raw.num_genes());
    for (RowId r = 0; r < raw.num_rows(); ++r) {
      for (GeneId g = 0; g < raw.num_genes(); ++g) row[g] = raw.value(r, g);
      (fold_of[r] == fold ? test : train).AddRow(row, raw.label(r));
    }
    if (train.num_rows() == 0 || test.num_rows() == 0) {
      result.folds.push_back(EvalOutcome{});
      continue;
    }
    Pipeline pipeline = PreparePipeline(train, test);
    EvalOutcome eval;
    if (model_kind == "rcbt") {
      RcbtOptions opt;
      opt.k = k32.value();
      opt.nl = nl32.value();
      opt.min_support_frac = frac.value();
      opt.item_scores = pipeline.item_scores;
      RcbtClassifier clf = RcbtClassifier::Train(pipeline.train, opt);
      eval = EvaluateDiscrete(pipeline.test,
                              [&](const Bitset& items, bool* dflt) {
                                const auto pred = clf.Predict(items);
                                *dflt = pred.used_default;
                                return pred.label;
                              });
    } else {
      CbaOptions opt;
      opt.min_support_frac = frac.value();
      opt.item_scores = pipeline.item_scores;
      CbaClassifier clf = TrainCba(pipeline.train, opt);
      eval = EvaluateDiscrete(pipeline.test,
                              [&](const Bitset& items, bool* dflt) {
                                return clf.Predict(items, dflt);
                              });
    }
    std::printf("fold %u: %.2f%% (%u/%u)\n", fold, 100.0 * eval.accuracy(),
                eval.correct, eval.total);
    result.folds.push_back(eval);
  }
  std::printf("%s %lld-fold CV: mean %.2f%%, pooled %.2f%%\n",
              model_kind.c_str(), static_cast<long long>(folds.value()),
              100.0 * result.mean_accuracy(),
              100.0 * result.pooled_accuracy());
  return Status::OK();
}

Status RunConvertCommand(const std::vector<std::string>& args) {
  auto flags_or = FlagParser::Parse(args);
  if (!flags_or.ok()) return flags_or.status();
  const FlagParser& flags = flags_or.value();
  TOPKRGS_RETURN_NOT_OK(
      flags.CheckKnown({"input", "output", "num-items", "chunk-bytes"}));

  auto input = flags.GetRequired("input");
  if (!input.ok()) return input.status();
  auto output = flags.GetRequired("output");
  if (!output.ok()) return output.status();
  auto num_items = flags.GetInt("num-items", 0);
  if (!num_items.ok()) return num_items.status();
  if (num_items.value() < 0) {
    return Status::InvalidArgument("--num-items must be >= 0 (0 = infer)");
  }
  auto chunk_bytes = flags.GetInt("chunk-bytes", 1 << 20);
  if (!chunk_bytes.ok()) return chunk_bytes.status();
  if (chunk_bytes.value() < 1) {
    return Status::InvalidArgument("--chunk-bytes must be >= 1");
  }

  StreamReader::Options options;
  // CheckedCast handles the signed int64 directly — the old path cast to
  // uint64 first, so a (rejected-above) negative would have slipped past
  // the index bound as a huge unsigned value.
  auto declared = CheckedCast<uint32_t>(num_items.value(), "--num-items");
  if (!declared.ok()) return declared.status();
  options.num_items = declared.value();
  options.chunk_bytes = static_cast<size_t>(chunk_bytes.value());
  auto table_or = StreamReader::ReadItemData(input.value(), options);
  if (!table_or.ok()) return table_or.status();
  const StreamedTable& table = table_or.value();

  TOPKRGS_RETURN_NOT_OK(WriteTkds(table, output.value()));
  auto mapped_or = MmapDataset::Open(output.value());  // verify what we wrote
  if (!mapped_or.ok()) return mapped_or.status();
  std::printf("%s: %u rows, %u items, %llu entries -> %s (%zu bytes)\n",
              input.value().c_str(), table.num_rows(), table.num_items(),
              static_cast<unsigned long long>(table.nnz()),
              output.value().c_str(), mapped_or.value().mapped_bytes());
  return Status::OK();
}

Status RunShardMineCommand(const std::vector<std::string>& args) {
  auto flags_or = FlagParser::Parse(args);
  if (!flags_or.ok()) return flags_or.status();
  const FlagParser& flags = flags_or.value();
  TOPKRGS_RETURN_NOT_OK(flags.CheckKnown(
      {"data", "consequent", "minsup", "minsup-frac", "k", "memory-budget",
       "shards", "threads", "budget", "max-print"}));

  auto data_path = flags.GetRequired("data");
  if (!data_path.ok()) return data_path.status();

  // tkds files are detected by extension; anything else streams as
  // item-data text. Both end in the same TransposedView.
  MmapDataset mapped;
  StreamedTable streamed;
  TransposedView view;
  const std::string& path = data_path.value();
  const bool is_tkds =
      path.size() >= 5 && path.compare(path.size() - 5, 5, ".tkds") == 0;
  if (is_tkds) {
    auto mapped_or = MmapDataset::Open(path);
    if (!mapped_or.ok()) return mapped_or.status();
    mapped = std::move(mapped_or).value();
    view = mapped.View();
  } else {
    auto table_or = StreamReader::ReadItemData(path);
    if (!table_or.ok()) return table_or.status();
    streamed = std::move(table_or).value();
    view = streamed.View();
  }

  auto consequent = flags.GetInt("consequent", 1);
  if (!consequent.ok()) return consequent.status();
  if (consequent.value() < 0 || consequent.value() >= view.num_classes) {
    return Status::InvalidArgument("--consequent out of range");
  }
  // NOLINT(cast: < num_classes <= kMaxClasses = 256 checked above)
  const ClassLabel cls = static_cast<ClassLabel>(consequent.value());
  uint32_t class_rows = 0;
  for (uint32_t r = 0; r < view.num_rows; ++r) {
    if (view.labels[r] == cls) ++class_rows;
  }
  if (class_rows == 0) {
    return Status::InvalidArgument("no rows of the requested class");
  }
  auto minsup = ResolveMinsup(flags, class_rows);
  if (!minsup.ok()) return minsup.status();
  auto k = flags.GetInt("k", 5);
  if (!k.ok()) return k.status();
  auto memory_budget = flags.GetInt("memory-budget", 0);
  if (!memory_budget.ok()) return memory_budget.status();
  if (memory_budget.value() < 0) {
    return Status::InvalidArgument("--memory-budget must be >= 0");
  }
  auto shards = flags.GetInt("shards", 0);
  if (!shards.ok()) return shards.status();
  if (shards.value() < 0) {
    return Status::InvalidArgument("--shards must be >= 0 (0 = auto)");
  }
  auto threads = flags.GetInt("threads", 1);
  if (!threads.ok()) return threads.status();
  if (threads.value() < 0) {
    return Status::InvalidArgument("--threads must be >= 0 (0 = all cores)");
  }
  auto budget = flags.GetDouble("budget", 30.0);
  if (!budget.ok()) return budget.status();
  auto max_print = flags.GetInt("max-print", 10);
  if (!max_print.ok()) return max_print.status();

  std::printf("dataset: %u rows, %u items, %llu entries; class %d has %u "
              "rows; minsup %u\n",
              view.num_rows, view.num_items,
              static_cast<unsigned long long>(view.nnz()),
              int{cls}, class_rows, minsup.value());

  ShardPlanOptions plan_opt;
  auto k32 = FlagU32(k.value(), 1, "--k");
  if (!k32.ok()) return k32.status();
  plan_opt.k = k32.value();
  plan_opt.min_support = minsup.value();
  plan_opt.memory_budget_bytes =
      static_cast<uint64_t>(memory_budget.value());
  auto shards32 = FlagU32(shards.value(), 0, "--shards");
  if (!shards32.ok()) return shards32.status();
  plan_opt.shard_count = shards32.value();
  ShardMineOptions mine_opt;
  auto threads32 = FlagU32(threads.value(), 0, "--threads");
  if (!threads32.ok()) return threads32.status();
  mine_opt.threads = threads32.value();
  mine_opt.deadline = Deadline(budget.value());

  ShardPlan plan;
  auto merged_or = MineShardedTopkRGS(view, cls, plan_opt, mine_opt, &plan);
  if (!merged_or.ok()) return merged_or.status();
  const MergedTopk& merged = merged_or.value();

  std::printf("plan: %zu shard(s) over %u positive rows (estimated working "
              "set ~%llu bytes%s)\n",
              plan.shards.size(), plan.positives,
              static_cast<unsigned long long>(plan.estimated_peak_bytes),
              plan_opt.memory_budget_bytes != 0 ? ", within budget" : "");
  // groups_emitted counts raw per-shard emissions (pre-merge), so like
  // nodes_visited it varies with the shard count; the digest must not.
  std::printf("merged %llu shard emissions in %.2fs; effective minsup %u; "
              "digest %016llx%s\n",
              static_cast<unsigned long long>(merged.stats.groups_emitted),
              merged.stats.seconds, merged.effective_min_support,
              static_cast<unsigned long long>(
                  TopkDigest(merged.per_row, merged.effective_min_support)),
              merged.stats.timed_out ? " (TIMED OUT — lists incomplete)" : "");

  // Top distinct groups in per-row significance order, like topkrgs-mine.
  size_t printed = 0;
  std::vector<const RuleGroup*> seen;
  for (uint32_t r = 0;
       r < view.num_rows && printed < static_cast<size_t>(std::max<int64_t>(
                                          0, max_print.value()));
       ++r) {
    for (const RuleGroupPtr& group : merged.per_row[r]) {
      if (std::find(seen.begin(), seen.end(), group.get()) != seen.end()) {
        continue;
      }
      seen.push_back(group.get());
      std::printf("  sup %u / asup %u (conf %.3f), %zu items, covers %zu "
                  "rows\n",
                  group->support, group->antecedent_support,
                  group->antecedent_support == 0
                      ? 0.0
                      : static_cast<double>(group->support) /
                            group->antecedent_support,
                  group->antecedent.Count(), group->row_support.Count());
      if (++printed >= static_cast<size_t>(std::max<int64_t>(
                           0, max_print.value()))) {
        break;
      }
    }
  }
  return Status::OK();
}

}  // namespace topkrgs
