#ifndef TOPKRGS_UTIL_HISTOGRAM_H_
#define TOPKRGS_UTIL_HISTOGRAM_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <string>

namespace topkrgs {

/// A fixed-bucket latency histogram safe for concurrent recording: workers
/// Record() from many threads with relaxed atomics (counters are
/// independent; no ordering is needed between them), readers take a
/// point-in-time snapshot for percentiles and /metrics rendering.
/// All state is atomic, so under the annotation conventions of
/// DESIGN.md §11 nothing here is GUARDED_BY a mutex; keep it that way —
/// a lock on the Record() path would serialize every worker thread.
///
/// Buckets are exponential base-2 over microseconds: bucket i counts
/// samples in [2^i, 2^(i+1)) us, bucket 0 is [0, 2) us, the last bucket is
/// unbounded. 32 buckets span 1 us .. ~35 minutes, which covers any
/// plausible request latency.
class LatencyHistogram {
 public:
  static constexpr size_t kNumBuckets = 32;

  void Record(uint64_t micros) {
    size_t bucket = 0;
    while (bucket + 1 < kNumBuckets && micros >= (uint64_t{2} << bucket)) {
      ++bucket;
    }
    buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
    sum_micros_.fetch_add(micros, std::memory_order_relaxed);
  }

  /// A point-in-time copy; concurrent Record()s land in either side.
  struct Snapshot {
    uint64_t counts[kNumBuckets] = {};
    uint64_t total = 0;
    uint64_t sum_micros = 0;

    /// Upper bound (exclusive) of bucket i in microseconds.
    static uint64_t BucketBound(size_t i) { return uint64_t{2} << i; }

    /// Percentile estimate in microseconds (upper bound of the bucket the
    /// p-quantile sample falls into). p in [0, 100]; 0 with no samples.
    uint64_t PercentileMicros(double p) const {
      if (total == 0) return 0;
      const double target = p / 100.0 * static_cast<double>(total);
      uint64_t seen = 0;
      for (size_t i = 0; i < kNumBuckets; ++i) {
        seen += counts[i];
        if (static_cast<double>(seen) >= target && counts[i] > 0) {
          return BucketBound(i);
        }
      }
      return BucketBound(kNumBuckets - 1);
    }

    double MeanMicros() const {
      return total == 0
                 ? 0.0
                 : static_cast<double>(sum_micros) / static_cast<double>(total);
    }
  };

  Snapshot Snap() const {
    Snapshot s;
    for (size_t i = 0; i < kNumBuckets; ++i) {
      s.counts[i] = buckets_[i].load(std::memory_order_relaxed);
      s.total += s.counts[i];
    }
    s.sum_micros = sum_micros_.load(std::memory_order_relaxed);
    return s;
  }

  /// Prometheus histogram exposition (cumulative `le` buckets in seconds,
  /// plus _sum and _count), one line per non-empty boundary to keep the
  /// scrape small.
  std::string RenderPrometheus(const std::string& name) const {
    const Snapshot s = Snap();
    std::string out;
    uint64_t cumulative = 0;
    char buf[160];
    for (size_t i = 0; i < kNumBuckets; ++i) {
      cumulative += s.counts[i];
      if (s.counts[i] == 0) continue;
      std::snprintf(buf, sizeof(buf), "%s_bucket{le=\"%.6f\"} %llu\n",
                    name.c_str(),
                    static_cast<double>(Snapshot::BucketBound(i)) / 1e6,
                    static_cast<unsigned long long>(cumulative));
      out += buf;
    }
    std::snprintf(buf, sizeof(buf), "%s_bucket{le=\"+Inf\"} %llu\n",
                  name.c_str(), static_cast<unsigned long long>(s.total));
    out += buf;
    std::snprintf(buf, sizeof(buf), "%s_sum %.6f\n", name.c_str(),
                  static_cast<double>(s.sum_micros) / 1e6);
    out += buf;
    std::snprintf(buf, sizeof(buf), "%s_count %llu\n", name.c_str(),
                  static_cast<unsigned long long>(s.total));
    out += buf;
    return out;
  }

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> sum_micros_{0};
};

}  // namespace topkrgs

#endif  // TOPKRGS_UTIL_HISTOGRAM_H_
