#include "util/bitset.h"

#include <bit>

namespace topkrgs {

Bitset Bitset::AllSet(size_t size) {
  Bitset b(size);
  for (auto& w : b.words_) w = ~Word{0};
  // Mask off bits beyond the universe in the last word.
  const size_t tail = size % kWordBits;
  if (tail != 0 && !b.words_.empty()) {
    b.words_.back() &= (Word{1} << tail) - 1;
  }
  return b;
}

void Bitset::Clear() {
  for (auto& w : words_) w = 0;
}

size_t Bitset::Count() const {
  size_t total = 0;
  for (Word w : words_) total += static_cast<size_t>(std::popcount(w));
  return total;
}

bool Bitset::None() const {
  for (Word w : words_) {
    if (w != 0) return false;
  }
  return true;
}

void Bitset::IntersectWith(const Bitset& other) {
  TOPKRGS_CHECK(size_ == other.size_, "bitset universe mismatch");
  for (size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
}

void Bitset::UnionWith(const Bitset& other) {
  TOPKRGS_CHECK(size_ == other.size_, "bitset universe mismatch");
  for (size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
}

void Bitset::SubtractWith(const Bitset& other) {
  TOPKRGS_CHECK(size_ == other.size_, "bitset universe mismatch");
  for (size_t i = 0; i < words_.size(); ++i) words_[i] &= ~other.words_[i];
}

size_t Bitset::IntersectCount(const Bitset& other) const {
  TOPKRGS_CHECK(size_ == other.size_, "bitset universe mismatch");
  size_t total = 0;
  for (size_t i = 0; i < words_.size(); ++i) {
    total += static_cast<size_t>(std::popcount(words_[i] & other.words_[i]));
  }
  return total;
}

bool Bitset::IsSubsetOf(const Bitset& other) const {
  TOPKRGS_CHECK(size_ == other.size_, "bitset universe mismatch");
  for (size_t i = 0; i < words_.size(); ++i) {
    if ((words_[i] & ~other.words_[i]) != 0) return false;
  }
  return true;
}

bool Bitset::Intersects(const Bitset& other) const {
  TOPKRGS_CHECK(size_ == other.size_, "bitset universe mismatch");
  for (size_t i = 0; i < words_.size(); ++i) {
    if ((words_[i] & other.words_[i]) != 0) return true;
  }
  return false;
}

size_t Bitset::FindFirst() const {
  for (size_t w = 0; w < words_.size(); ++w) {
    if (words_[w] != 0) {
      return w * kWordBits + static_cast<size_t>(std::countr_zero(words_[w]));
    }
  }
  return size_;
}

size_t Bitset::FindNext(size_t pos) const {
  ++pos;
  if (pos >= size_) return size_;
  size_t w = pos / kWordBits;
  Word word = words_[w] & (~Word{0} << (pos % kWordBits));
  while (true) {
    if (word != 0) {
      return w * kWordBits + static_cast<size_t>(std::countr_zero(word));
    }
    if (++w == words_.size()) return size_;
    word = words_[w];
  }
}

std::vector<uint32_t> Bitset::ToVector() const {
  std::vector<uint32_t> out;
  out.reserve(Count());
  ForEach([&out](size_t i) { out.push_back(static_cast<uint32_t>(i)); });
  return out;
}

uint64_t Bitset::Hash() const {
  // SplitMix64-style per-word mixing.
  uint64_t h = 0x9e3779b97f4a7c15ULL ^ static_cast<uint64_t>(size_);
  for (Word w : words_) {
    uint64_t z = w + 0x9e3779b97f4a7c15ULL + h;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    h = z ^ (z >> 31);
  }
  return h;
}

Bitset Intersect(const Bitset& a, const Bitset& b) {
  Bitset out = a;
  out.IntersectWith(b);
  return out;
}

Bitset Union(const Bitset& a, const Bitset& b) {
  Bitset out = a;
  out.UnionWith(b);
  return out;
}

Bitset Subtract(const Bitset& a, const Bitset& b) {
  Bitset out = a;
  out.SubtractWith(b);
  return out;
}

}  // namespace topkrgs
