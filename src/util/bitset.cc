#include "util/bitset.h"

#include <bit>

#include "util/bitkernels.h"

namespace topkrgs {

namespace bk = bitkernels;

Bitset Bitset::AllSet(size_t size) {
  Bitset b(size);
  for (auto& w : b.words_) w = ~Word{0};
  // Mask off bits beyond the universe in the last word.
  const size_t tail = size % kWordBits;
  if (tail != 0 && !b.words_.empty()) {
    b.words_.back() &= (Word{1} << tail) - 1;
  }
  return b;
}

void Bitset::Clear() {
  for (auto& w : words_) w = 0;
}

size_t Bitset::Count() const {
  return bk::ActiveKernels().popcount(words_.data(), words_.size());
}

bool Bitset::None() const {
  return bk::ActiveKernels().all_zero(words_.data(), words_.size());
}

void Bitset::IntersectWith(const Bitset& other) {
  TOPKRGS_CHECK(size_ == other.size_, "bitset universe mismatch");
  bk::ActiveKernels().and_inplace(words_.data(), other.words_.data(),
                                  words_.size());
}

void Bitset::UnionWith(const Bitset& other) {
  TOPKRGS_CHECK(size_ == other.size_, "bitset universe mismatch");
  bk::ActiveKernels().or_inplace(words_.data(), other.words_.data(),
                                 words_.size());
}

void Bitset::SubtractWith(const Bitset& other) {
  TOPKRGS_CHECK(size_ == other.size_, "bitset universe mismatch");
  bk::ActiveKernels().andnot_inplace(words_.data(), other.words_.data(),
                                     words_.size());
}

void Bitset::AssignIntersectionOf(const Bitset& a, const Bitset& b) {
  TOPKRGS_CHECK(a.size_ == b.size_, "bitset universe mismatch");
  if (this == &a) {
    IntersectWith(b);
    return;
  }
  if (this == &b) {
    IntersectWith(a);
    return;
  }
  size_ = a.size_;
  // Fused copy-and-AND: one pass instead of assign + and_inplace. The
  // scalar loop computes the exact same words as every kernel tier, so
  // the representation-blind hash/equality contract is untouched.
  // NOLINT(hotpath: no-op once the scratch has seen this universe —
  // the resize only ever grows up to the fixed word count)
  words_.resize(a.words_.size());
  for (size_t w = 0; w < words_.size(); ++w) {
    words_[w] = a.words_[w] & b.words_[w];
  }
}

size_t Bitset::IntersectCount(const Bitset& other) const {
  TOPKRGS_CHECK(size_ == other.size_, "bitset universe mismatch");
  return bk::ActiveKernels().and_popcount(words_.data(), other.words_.data(),
                                          words_.size());
}

bool Bitset::IsSubsetOf(const Bitset& other) const {
  TOPKRGS_CHECK(size_ == other.size_, "bitset universe mismatch");
  return bk::ActiveKernels().is_subset(words_.data(), other.words_.data(),
                                       words_.size());
}

bool Bitset::Intersects(const Bitset& other) const {
  TOPKRGS_CHECK(size_ == other.size_, "bitset universe mismatch");
  return bk::ActiveKernels().intersects(words_.data(), other.words_.data(),
                                        words_.size());
}

size_t Bitset::FindFirst() const {
  for (size_t w = 0; w < words_.size(); ++w) {
    if (words_[w] != 0) {
      return w * kWordBits + static_cast<size_t>(std::countr_zero(words_[w]));
    }
  }
  return size_;
}

size_t Bitset::FindNext(size_t pos) const {
  ++pos;
  if (pos >= size_) return size_;
  size_t w = pos / kWordBits;
  Word word = words_[w] & (~Word{0} << (pos % kWordBits));
  while (true) {
    if (word != 0) {
      return w * kWordBits + static_cast<size_t>(std::countr_zero(word));
    }
    if (++w == words_.size()) return size_;
    word = words_[w];
  }
}

std::vector<uint32_t> Bitset::ToVector() const {
  std::vector<uint32_t> out;
  out.reserve(Count());
  ForEach([&out](size_t i) { out.push_back(static_cast<uint32_t>(i)); });
  return out;
}

uint64_t Bitset::Hash() const {
  // Streamed through the shared WordHasher so a sparse RowSet over the
  // same elements hashes identically (util/rowset.cc relies on this).
  return bk::HashWords(words_.data(), words_.size(),
                       bk::kHashSeed ^ static_cast<uint64_t>(size_));
}

Bitset Intersect(const Bitset& a, const Bitset& b) {
  Bitset out = a;
  out.IntersectWith(b);
  return out;
}

Bitset Union(const Bitset& a, const Bitset& b) {
  Bitset out = a;
  out.UnionWith(b);
  return out;
}

Bitset Subtract(const Bitset& a, const Bitset& b) {
  Bitset out = a;
  out.SubtractWith(b);
  return out;
}

}  // namespace topkrgs
