#ifndef TOPKRGS_UTIL_IO_H_
#define TOPKRGS_UTIL_IO_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace topkrgs {

/// Splits `line` at `delim`, keeping empty fields.
std::vector<std::string_view> SplitString(std::string_view line, char delim);

/// Parses a double; returns InvalidArgument on malformed input.
StatusOr<double> ParseDouble(std::string_view text);

/// Parses a non-negative integer; returns InvalidArgument on malformed input.
StatusOr<uint64_t> ParseUint(std::string_view text);

/// Reads a whole text file into lines (without trailing newlines).
StatusOr<std::vector<std::string>> ReadLines(const std::string& path);

/// Writes lines to a file, one per line.
Status WriteLines(const std::string& path, const std::vector<std::string>& lines);

}  // namespace topkrgs

#endif  // TOPKRGS_UTIL_IO_H_
