#ifndef TOPKRGS_UTIL_IO_H_
#define TOPKRGS_UTIL_IO_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/safe_math.h"
#include "util/status.h"

namespace topkrgs {

/// Splits `line` at `delim`, keeping empty fields. The returned views
/// alias `line`'s backing storage — they dangle if the caller passed a
/// temporary string that dies before the views are consumed.
std::vector<std::string_view> SplitString(
    std::string_view line TKRGS_LIFETIME_BOUND, char delim);

/// Splits an in-memory buffer into lines exactly as ReadLines splits a
/// file: '\n' terminates a line, a trailing '\r' is stripped (CRLF input),
/// and a final '\n' does not produce an extra empty line. This is the
/// entry point the fuzz targets share with the file loaders, so fuzzed
/// parsing exercises the same line semantics as production parsing.
std::vector<std::string> SplitIntoLines(std::string_view text);

/// Parses a double; returns InvalidArgument on malformed input.
/// Accepts "inf"/"nan" spellings; use ParseFiniteDouble where a
/// non-finite value would poison downstream arithmetic or sorting.
[[nodiscard]] StatusOr<double> ParseDouble(std::string_view text);

/// Parses a double and rejects NaN and infinities with InvalidArgument.
[[nodiscard]] StatusOr<double> ParseFiniteDouble(std::string_view text);

/// Parses a non-negative integer; returns InvalidArgument on malformed
/// input and on values that overflow uint64 (overflow is detected, never
/// silently wrapped).
[[nodiscard]] StatusOr<uint64_t> ParseUint(std::string_view text);

/// ParseUint restricted to values representable in 32 bits; file formats
/// whose ids/counts are stored in uint32 fields must use this so oversized
/// values are rejected instead of truncated.
[[nodiscard]] StatusOr<uint32_t> ParseUint32(std::string_view text);

/// Reads a whole text file into lines (without trailing newlines).
StatusOr<std::vector<std::string>> ReadLines(const std::string& path);

/// Writes lines to a file, one per line.
[[nodiscard]] Status WriteLines(const std::string& path, const std::vector<std::string>& lines);

}  // namespace topkrgs

#endif  // TOPKRGS_UTIL_IO_H_
