#ifndef TOPKRGS_UTIL_SAFE_MATH_H_
#define TOPKRGS_UTIL_SAFE_MATH_H_

#include <cstdint>
#include <limits>
#include <string>
#include <type_traits>
#include <utility>

#include "util/status.h"

/// Integer-safety layer (DESIGN.md §15): checked arithmetic + checked
/// narrowing for every size/index computation that feeds an allocation,
/// an offset, or a wire-format field, plus the lifetime-annotation shims
/// that make dangling-view bugs clang build errors.
///
/// The miner's arithmetic surface is index math over hostile sizes:
/// transposed CSR offsets (u64 nnz), shard position ranges, posting-list
/// ids, memory-budget models. A 64-bit count that silently narrows into a
/// 32-bit index, or a byte-size product that wraps, corrupts mining output
/// without any sanitizer able to prove it wrong after the fact. Policy:
///
///   - Cold paths (parsers, planners, CLI, layout/validation code) go
///     through CheckedAdd/CheckedMul/CheckedCast and propagate StatusOr.
///   - Hot paths (per-node mining loops) may keep a raw cast ONLY with a
///     `// NOLINT(cast: <bound argument>)` justification naming the
///     invariant that makes it safe; tools/lint/cast_lint.py enforces
///     exactly this split.
///   - CheckedIndexU32 is the single sanctioned u64 -> u32 index
///     narrowing entry point (hoisted here from scale/stream_reader).

/// Lifetime-annotation shims, same pattern as util/thread_annotations.h:
/// clang attributes under clang, no-ops under gcc, so annotated code
/// builds everywhere while clang builds (`tools/ci.sh lint`/`intsan`)
/// turn a view outliving its backing storage into a -Wdangling error.
///
///   TKRGS_LIFETIME_BOUND  on a parameter (or after a member function's
///       cv-qualifiers, binding implicit *this): the returned object
///       refers into that argument, so binding the result past a
///       temporary argument's lifetime is diagnosed at the call site.
///   TKRGS_GSL_POINTER     on a non-owning view type (TransposedView):
///       marks it pointer-like so clang's statement-local lifetime
///       analysis tracks what it points into.
///   TKRGS_GSL_OWNER       on an owning type handing out such views.
#if defined(__clang__)
#define TKRGS_LIFETIME_BOUND [[clang::lifetimebound]]
#define TKRGS_GSL_POINTER [[gsl::Pointer]]
#define TKRGS_GSL_OWNER [[gsl::Owner]]
#else
#define TKRGS_LIFETIME_BOUND  // no-op outside clang
#define TKRGS_GSL_POINTER
#define TKRGS_GSL_OWNER
#endif

namespace topkrgs {

namespace safe_math_internal {

/// Spells an integral type for error messages ("uint32", "int64", ...)
/// without dragging in <typeinfo>.
template <typename T>
const char* TypeName() {
  static_assert(std::is_integral_v<T>, "safe_math handles integers only");
  constexpr int bits = std::numeric_limits<T>::digits +
                       (std::is_signed_v<T> ? 1 : 0);
  if constexpr (std::is_signed_v<T>) {
    return bits == 8 ? "int8" : bits == 16 ? "int16"
                              : bits == 32 ? "int32" : "int64";
  } else {
    return bits == 8 ? "uint8" : bits == 16 ? "uint16"
                               : bits == 32 ? "uint32" : "uint64";
  }
}

template <typename T>
std::string ValueToString(T value) {
  // std::to_string has no uint8/int8 overload that prints digits.
  if constexpr (std::is_signed_v<T>) {
    return std::to_string(static_cast<long long>(value));
  } else {
    return std::to_string(static_cast<unsigned long long>(value));
  }
}

}  // namespace safe_math_internal

/// Range-checked integral conversion: the value is preserved exactly or
/// the call fails with OutOfRange naming `what`. This is the ONLY
/// sanctioned way to narrow a size/index in checked code — a raw
/// static_cast to a narrower integer type is a cast-lint finding.
template <typename To, typename From>
[[nodiscard]] StatusOr<To> CheckedCast(From value, const char* what) {
  static_assert(std::is_integral_v<To> && std::is_integral_v<From>,
                "CheckedCast converts between integral types");
  if (!std::in_range<To>(value)) {
    return Status::OutOfRange(
        std::string(what) + " (" +
        safe_math_internal::ValueToString(value) + ") does not fit in " +
        safe_math_internal::TypeName<To>());
  }
  // The one sanctioned narrowing site: the range check above makes this
  // cast value-preserving by construction.
  return static_cast<To>(value);  // NOLINT(cast: in_range-checked above)
}

/// Overflow-checked addition over a single integral type; both gcc and
/// clang lower __builtin_add_overflow to a flags check, so the cost is
/// one branch.
template <typename T>
[[nodiscard]] StatusOr<T> CheckedAdd(T a, T b, const char* what) {
  static_assert(std::is_integral_v<T>, "CheckedAdd handles integers only");
  T out;
  if (__builtin_add_overflow(a, b, &out)) {
    return Status::OutOfRange(
        std::string(what) + ": " + safe_math_internal::ValueToString(a) +
        " + " + safe_math_internal::ValueToString(b) + " overflows " +
        safe_math_internal::TypeName<T>());
  }
  return out;
}

/// Overflow-checked subtraction (signed: wraps on INT_MIN; unsigned:
/// fails on a negative difference instead of wrapping to huge).
template <typename T>
[[nodiscard]] StatusOr<T> CheckedSub(T a, T b, const char* what) {
  static_assert(std::is_integral_v<T>, "CheckedSub handles integers only");
  T out;
  if (__builtin_sub_overflow(a, b, &out)) {
    return Status::OutOfRange(
        std::string(what) + ": " + safe_math_internal::ValueToString(a) +
        " - " + safe_math_internal::ValueToString(b) + " overflows " +
        safe_math_internal::TypeName<T>());
  }
  return out;
}

/// Overflow-checked multiplication — the CSR/layout workhorse
/// (count × element size, rows × items).
template <typename T>
[[nodiscard]] StatusOr<T> CheckedMul(T a, T b, const char* what) {
  static_assert(std::is_integral_v<T>, "CheckedMul handles integers only");
  T out;
  if (__builtin_mul_overflow(a, b, &out)) {
    return Status::OutOfRange(
        std::string(what) + ": " + safe_math_internal::ValueToString(a) +
        " * " + safe_math_internal::ValueToString(b) + " overflows " +
        safe_math_internal::TypeName<T>());
  }
  return out;
}

/// Checked uint64 -> uint32 narrowing for row/item indexes on the ingest
/// path. Every count that ends up in a RowId/ItemId must pass through here
/// before the cast: at 100k+ rows the old implicit casts were silently
/// correct only because no input was big enough to expose them. `what`
/// names the quantity for the error message. (Hoisted from
/// scale/stream_reader so there is exactly one checked-narrowing entry
/// point; kept InvalidArgument — its callers classify an oversized count
/// as a malformed input, not a range error.)
[[nodiscard]] inline StatusOr<uint32_t> CheckedIndexU32(uint64_t value,
                                                        const char* what) {
  if (value > std::numeric_limits<uint32_t>::max()) {
    return Status::InvalidArgument(
        std::string(what) + " (" + std::to_string(value) +
        ") exceeds the 32-bit index space; row/item ids are uint32");
  }
  return static_cast<uint32_t>(value);  // NOLINT(cast: bound-checked above)
}

}  // namespace topkrgs

#endif  // TOPKRGS_UTIL_SAFE_MATH_H_
