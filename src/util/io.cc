#include "util/io.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>

namespace topkrgs {

std::vector<std::string_view> SplitString(std::string_view line, char delim) {
  std::vector<std::string_view> fields;
  size_t start = 0;
  while (true) {
    const size_t pos = line.find(delim, start);
    if (pos == std::string_view::npos) {
      fields.push_back(line.substr(start));
      break;
    }
    fields.push_back(line.substr(start, pos - start));
    start = pos + 1;
  }
  return fields;
}

std::vector<std::string> SplitIntoLines(std::string_view text) {
  std::vector<std::string> lines;
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    std::string_view line = text.substr(start, end - start);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    lines.emplace_back(line);
    start = end + 1;
  }
  return lines;
}

StatusOr<double> ParseDouble(std::string_view text) {
  if (text.empty()) return Status::InvalidArgument("empty numeric field");
  // std::from_chars for doubles is missing on some libstdc++ versions the
  // project targets; strtod on a bounded copy is portable and sufficient
  // for file parsing.
  std::string buf(text);
  char* end = nullptr;
  errno = 0;
  const double value = std::strtod(buf.c_str(), &end);
  if (errno != 0 || end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("malformed double: '" + buf + "'");
  }
  return value;
}

StatusOr<double> ParseFiniteDouble(std::string_view text) {
  auto value = ParseDouble(text);
  if (!value.ok()) return value.status();
  if (!std::isfinite(value.value())) {
    return Status::InvalidArgument("non-finite value: '" + std::string(text) +
                                   "'");
  }
  return value;
}

StatusOr<uint64_t> ParseUint(std::string_view text) {
  if (text.empty()) return Status::InvalidArgument("empty integer field");
  uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("malformed integer: '" + std::string(text) +
                                     "'");
    }
    const uint64_t digit = static_cast<uint64_t>(c - '0');
    if (value > (std::numeric_limits<uint64_t>::max() - digit) / 10) {
      return Status::InvalidArgument("integer overflow: '" + std::string(text) +
                                     "'");
    }
    value = value * 10 + digit;
  }
  return value;
}

StatusOr<uint32_t> ParseUint32(std::string_view text) {
  auto value = ParseUint(text);
  if (!value.ok()) return value.status();
  if (value.value() > std::numeric_limits<uint32_t>::max()) {
    return Status::InvalidArgument("value out of 32-bit range: '" +
                                   std::string(text) + "'");
  }
  return static_cast<uint32_t>(value.value());
}

StatusOr<std::vector<std::string>> ReadLines(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open for read: " + path);
  std::ostringstream contents;
  contents << in.rdbuf();
  if (in.bad()) return Status::IOError("read failed: " + path);
  return SplitIntoLines(contents.str());
}

Status WriteLines(const std::string& path, const std::vector<std::string>& lines) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open for write: " + path);
  for (const auto& line : lines) out << line << '\n';
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

}  // namespace topkrgs
