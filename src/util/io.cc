#include "util/io.h"

#include <cerrno>
#include <cstdlib>
#include <fstream>

namespace topkrgs {

std::vector<std::string_view> SplitString(std::string_view line, char delim) {
  std::vector<std::string_view> fields;
  size_t start = 0;
  while (true) {
    const size_t pos = line.find(delim, start);
    if (pos == std::string_view::npos) {
      fields.push_back(line.substr(start));
      break;
    }
    fields.push_back(line.substr(start, pos - start));
    start = pos + 1;
  }
  return fields;
}

StatusOr<double> ParseDouble(std::string_view text) {
  if (text.empty()) return Status::InvalidArgument("empty numeric field");
  // std::from_chars for doubles is missing on some libstdc++ versions the
  // project targets; strtod on a bounded copy is portable and sufficient
  // for file parsing.
  std::string buf(text);
  char* end = nullptr;
  errno = 0;
  const double value = std::strtod(buf.c_str(), &end);
  if (errno != 0 || end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("malformed double: '" + buf + "'");
  }
  return value;
}

StatusOr<uint64_t> ParseUint(std::string_view text) {
  if (text.empty()) return Status::InvalidArgument("empty integer field");
  uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("malformed integer: '" + std::string(text) +
                                     "'");
    }
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  return value;
}

StatusOr<std::vector<std::string>> ReadLines(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open for read: " + path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    lines.push_back(line);
  }
  return lines;
}

Status WriteLines(const std::string& path, const std::vector<std::string>& lines) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open for write: " + path);
  for (const auto& line : lines) out << line << '\n';
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

}  // namespace topkrgs
