// Word-level set-algebra kernels behind util/bitset.h and util/rowset.h.
//
// Every operation exists in (at least) two implementations:
//
//   * Scalar — explicit 4-words-per-iteration block loops over uint64_t
//     with std::popcount and independent accumulators. This is the
//     reference implementation, the only build on non-x86 targets, and
//     the semantics contract every other tier must reproduce exactly.
//   * AVX2 — 256-bit lanes; popcounts via the pshufb nibble-LUT
//     (Mula) reduction, containment via vptest (testc/testz).
//   * AVX-512 — 512-bit lanes using VPOPCNTDQ where the CPU has it.
//
// Dispatch is a function-pointer table resolved once per process from
// cpuid (never per call): ActiveKernels() checks the TOPKRGS_SIMD
// environment override first ("scalar" | "avx2" | "avx512" | "auto"),
// then __builtin_cpu_supports. Forcing "scalar" is how CI keeps the
// fallback green on every commit (tools/ci.sh simd stage).
//
// Determinism contract (DESIGN.md §13): all kernels compute exact set
// algebra — same inputs, same bits out, regardless of tier. Tiers are
// therefore free to differ in instruction mix but never in results; the
// property tests in tests/rowset_test.cc compare every table pairwise.
#ifndef TOPKRGS_UTIL_BITKERNELS_H_
#define TOPKRGS_UTIL_BITKERNELS_H_

#include <cstddef>
#include <cstdint>

namespace topkrgs {
namespace bitkernels {

using Word = uint64_t;

// One resolved implementation tier. All pointers are non-null in every
// table; n is a word count and may be zero. Aliasing: a == b is allowed
// for the binary ops; partially overlapping ranges are not.
struct Kernels {
  const char* name;  // "scalar" | "avx2" | "avx512"
  // a[i] &= b[i]
  void (*and_inplace)(Word* a, const Word* b, size_t n);
  // a[i] |= b[i]
  void (*or_inplace)(Word* a, const Word* b, size_t n);
  // a[i] &= ~b[i]
  void (*andnot_inplace)(Word* a, const Word* b, size_t n);
  // sum(popcount(a[i]))
  size_t (*popcount)(const Word* a, size_t n);
  // sum(popcount(a[i] & b[i])) without materializing the intersection
  size_t (*and_popcount)(const Word* a, const Word* b, size_t n);
  // (sub[i] & ~super[i]) == 0 for all i
  bool (*is_subset)(const Word* sub, const Word* sup, size_t n);
  // (a[i] & b[i]) != 0 for some i
  bool (*intersects)(const Word* a, const Word* b, size_t n);
  // a[i] == 0 for all i
  bool (*all_zero)(const Word* a, size_t n);
};

// The blocked-scalar reference table. Always available.
const Kernels& ScalarKernels();

// SIMD tables, or nullptr when the CPU (or the build target) lacks the
// ISA. Exposed so the property tests can cross-check every tier the
// machine offers, independent of which one is active.
const Kernels* Avx2Kernels();
const Kernels* Avx512Kernels();

// The process-wide table: TOPKRGS_SIMD override, then best cpuid tier.
// Resolved once; cheap to call afterwards.
const Kernels& ActiveKernels();
const char* ActiveKernelName();

// --- Hashing -------------------------------------------------------------
//
// The set hash must be identical across tiers AND representations (a
// sparse RowSet hashes equal to the dense Bitset of the same rows), so
// it is defined once, in scalar code, as a streaming 4-lane SplitMix64
// over the full word sequence including zero words. The 4 lanes mirror
// the kernels' block structure for ILP without changing the value.

inline constexpr uint64_t kHashSeed = 0x9e3779b97f4a7c15ULL;

inline uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Streams words in index order; Finish() folds the lanes in a fixed
// order so the result is independent of how many words each lane saw.
class WordHasher {
 public:
  explicit WordHasher(uint64_t seed) {
    lanes_[0] = seed;
    lanes_[1] = SplitMix64(seed ^ 0x8e5d1b3c6a9f42d7ULL);
    lanes_[2] = SplitMix64(seed ^ 0x3c79ac492ba7b653ULL);
    lanes_[3] = SplitMix64(seed ^ 0x1c69b3f74ac4fb51ULL);
  }

  void Consume(Word w) {
    lanes_[next_] = SplitMix64(lanes_[next_] ^ w);
    next_ = (next_ + 1) & 3;
  }

  uint64_t Finish() const {
    uint64_t h = lanes_[0];
    h = SplitMix64(h ^ lanes_[1]);
    h = SplitMix64(h ^ lanes_[2]);
    h = SplitMix64(h ^ lanes_[3]);
    return h;
  }

 private:
  uint64_t lanes_[4];
  unsigned next_ = 0;
};

// Hash of a full word range with the given seed; equals feeding every
// word through a WordHasher(seed) then Finish().
uint64_t HashWords(const Word* w, size_t n, uint64_t seed);

}  // namespace bitkernels
}  // namespace topkrgs

#endif  // TOPKRGS_UTIL_BITKERNELS_H_
