#ifndef TOPKRGS_UTIL_ARENA_H_
#define TOPKRGS_UTIL_ARENA_H_

#include <cstddef>
#include <utility>
#include <vector>

namespace topkrgs {

/// Recycles std::vector buffers so hot loops that repeatedly build and drop
/// short-lived vectors (prefix-tree projections, DFS scratch lists) reuse
/// capacity instead of round-tripping through the allocator on every
/// enumeration edge. Buffers come back cleared but keep their capacity, so
/// a steady-state search stops allocating entirely.
///
/// Deliberately not thread-safe: each miner worker owns its own pool, which
/// is both faster (no synchronization) and keeps buffer capacity resident
/// on the thread that grew it.
template <typename T>
class VectorPool {
 public:
  VectorPool() = default;
  VectorPool(const VectorPool&) = delete;
  VectorPool& operator=(const VectorPool&) = delete;
  VectorPool(VectorPool&&) = default;
  VectorPool& operator=(VectorPool&&) = default;

  /// Hands out a cleared buffer, recycled when possible.
  std::vector<T> Acquire() {
    ++acquires_;
    if (free_.empty()) {
      ++heap_allocations_;
      return {};
    }
    std::vector<T> v = std::move(free_.back());
    free_.pop_back();
    v.clear();
    return v;
  }

  /// Returns a buffer to the pool. Buffers that never allocated are
  /// dropped — there is no capacity to recycle.
  void Release(std::vector<T>&& v) {
    if (v.capacity() == 0) return;
    free_.push_back(std::move(v));
  }

  /// Buffers handed out since construction.
  size_t acquires() const { return acquires_; }

  /// Acquires that found the pool empty and fell back to a fresh vector.
  /// acquires() - heap_allocations() is the allocation churn the pool
  /// absorbed.
  size_t heap_allocations() const { return heap_allocations_; }

 private:
  std::vector<std::vector<T>> free_;
  size_t acquires_ = 0;
  size_t heap_allocations_ = 0;
};

/// RAII lease of a pooled vector: acquires on construction, releases on
/// scope exit. Safe to use across recursion — each frame leases its own
/// buffers and the pool grows to the maximum live depth.
template <typename T>
class PooledVector {
 public:
  explicit PooledVector(VectorPool<T>* pool)
      : pool_(pool), v_(pool->Acquire()) {}
  ~PooledVector() { pool_->Release(std::move(v_)); }
  PooledVector(const PooledVector&) = delete;
  PooledVector& operator=(const PooledVector&) = delete;

  std::vector<T>& operator*() { return v_; }
  const std::vector<T>& operator*() const { return v_; }
  std::vector<T>* operator->() { return &v_; }
  const std::vector<T>* operator->() const { return &v_; }

 private:
  VectorPool<T>* pool_;
  std::vector<T> v_;
};

}  // namespace topkrgs

#endif  // TOPKRGS_UTIL_ARENA_H_
