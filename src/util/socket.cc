#include "util/socket.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace topkrgs {

namespace {

Status Errno(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}

}  // namespace

StatusOr<int> ListenTcp(uint16_t port, uint16_t* bound_port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status st = Errno("bind");
    ::close(fd);
    return st;
  }
  if (::listen(fd, 128) != 0) {
    const Status st = Errno("listen");
    ::close(fd);
    return st;
  }
  if (bound_port != nullptr) {
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
      const Status st = Errno("getsockname");
      ::close(fd);
      return st;
    }
    *bound_port = ntohs(bound.sin_port);
  }
  return fd;
}

StatusOr<int> AcceptConn(int listen_fd) {
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) return fd;
    if (errno == EINTR) continue;
    return Errno("accept");
  }
}

StatusOr<int> ConnectTcp(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status st = Errno("connect");
    ::close(fd);
    return st;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

Status SendAll(int fd, std::string_view data) {
  while (!data.empty()) {
    const ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    data.remove_prefix(static_cast<size_t>(n));
  }
  return Status::OK();
}

Status RecvAll(int fd, std::string* out, size_t max_bytes) {
  char buf[16384];
  while (out->size() < max_bytes) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("recv");
    }
    if (n == 0) return Status::OK();
    out->append(buf, static_cast<size_t>(n));
  }
  return Status::OK();
}

StatusOr<std::string> RecvSome(int fd, size_t max_bytes) {
  std::string buf(max_bytes, '\0');
  for (;;) {
    const ssize_t n = ::recv(fd, buf.data(), buf.size(), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("recv");
    }
    buf.resize(static_cast<size_t>(n));
    return buf;
  }
}

void ShutdownSocket(int fd) {
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
}

void CloseSocket(int fd) {
  if (fd >= 0) ::close(fd);
}

}  // namespace topkrgs
