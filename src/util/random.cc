#include "util/random.h"

#include <bit>
#include <cmath>

#include "util/status.h"

namespace topkrgs {

namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t x = seed;
  for (auto& s : state_) s = SplitMix64(x);
  // All-zero state is a fixed point of xoshiro; SplitMix64 cannot produce
  // four consecutive zeros, but keep the guarantee explicit.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

uint64_t Rng::Next() {
  const uint64_t result = std::rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = std::rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  TOPKRGS_CHECK(bound > 0, "NextBounded requires bound > 0");
  const uint64_t threshold = -bound % bound;
  while (true) {
    const uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  TOPKRGS_CHECK(lo <= hi, "NextInt requires lo <= hi");
  return lo + static_cast<int64_t>(
                  NextBounded(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = NextDouble();
  while (u1 <= 1e-300) u1 = NextDouble();
  const double u2 = NextDouble();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  const double two_pi = 6.283185307179586476925286766559;
  cached_gaussian_ = mag * std::sin(two_pi * u2);
  has_cached_gaussian_ = true;
  return mag * std::cos(two_pi * u2);
}

std::vector<uint32_t> Rng::SampleWithoutReplacement(uint32_t n, uint32_t k) {
  TOPKRGS_CHECK(k <= n, "sample size exceeds population");
  std::vector<uint32_t> pool(n);
  for (uint32_t i = 0; i < n; ++i) pool[i] = i;
  // Partial Fisher–Yates: the first k slots become the sample.
  for (uint32_t i = 0; i < k; ++i) {
    const uint32_t j = i + static_cast<uint32_t>(NextBounded(n - i));
    std::swap(pool[i], pool[j]);
  }
  pool.resize(k);
  return pool;
}

}  // namespace topkrgs
