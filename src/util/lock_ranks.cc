#include "util/lock_ranks.h"

#if TOPKRGS_LOCK_RANK_IS_ON()

#include <execinfo.h>
#include <unistd.h>

#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <vector>

namespace topkrgs {
namespace lock_rank {
namespace {

constexpr int kMaxFrames = 24;

struct HeldLock {
  const void* mu;
  int rank;
  const char* name;
  void* frames[kMaxFrames];
  int num_frames;
};

// Function-local static so first use from any thread constructs it;
// destruction order at thread exit is harmless (trivial element type,
// vector freed by the thread_local destructor).
std::vector<HeldLock>& Stack() {
  thread_local std::vector<HeldLock> held;
  return held;
}

void DumpTrace(const char* label, void* const* frames, int num_frames) {
  std::fprintf(stderr, "%s\n", label);
  // backtrace_symbols_fd writes straight to the fd: no malloc after the
  // failure is detected, so this works even from gnarly states.
  backtrace_symbols_fd(frames, num_frames, STDERR_FILENO);
}

[[noreturn]] void ReportInversion(const HeldLock& held, int rank,
                                  const char* name) {
  void* now_frames[kMaxFrames];
  const int now_n = backtrace(now_frames, kMaxFrames);
  std::fprintf(stderr,
               "lock rank inversion: acquiring \"%s\" (rank %d) while "
               "holding \"%s\" (rank %d); ranks must strictly increase "
               "(util/lock_ranks.h)\n",
               name, rank, held.name, held.rank);
  DumpTrace("--- stack at acquisition of the held lock:", held.frames,
            held.num_frames);
  DumpTrace("--- current stack:", now_frames, now_n);
  std::abort();
}

void Push(const void* mu, int rank, const char* name) {
  HeldLock held;
  held.mu = mu;
  held.rank = rank;
  held.name = name;
  held.num_frames = backtrace(held.frames, kMaxFrames);
  Stack().push_back(held);
}

}  // namespace

void OnAcquire(const void* mu, int rank, const char* name) {
  if (rank == kUnranked) return;
  // The stack is not necessarily monotone (try-locks skip the check), so
  // scan it all; depth is tiny — the discipline itself bounds it by the
  // number of distinct ranks.
  for (const HeldLock& held : Stack()) {
    if (held.rank >= rank) ReportInversion(held, rank, name);
  }
  Push(mu, rank, name);
}

void OnTryAcquire(const void* mu, int rank, const char* name) {
  if (rank == kUnranked) return;
  Push(mu, rank, name);
}

void OnRelease(const void* mu) {
  std::vector<HeldLock>& stack = Stack();
  for (size_t i = stack.size(); i-- > 0;) {
    if (stack[i].mu == mu) {
      stack.erase(stack.begin() + static_cast<std::ptrdiff_t>(i));
      return;
    }
  }
}

int HeldCount() { return static_cast<int>(Stack().size()); }

}  // namespace lock_rank
}  // namespace topkrgs

#endif  // TOPKRGS_LOCK_RANK_IS_ON()
