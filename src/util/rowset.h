// Density-adaptive row-set container for conditional projections.
//
// The row-enumeration miners carry one item set (or row set) per search
// node and repeatedly intersect it against the dense per-row/per-item
// bitmaps owned by the dataset. Near the root those sets are dense and
// the word-parallel Bitset kernels win; deep in the search they shrink
// to a handful of ids and walking a sorted id array beats scanning the
// whole universe. RowSet holds either representation behind one
// interface and switches per node by a density threshold (see
// PreferSparse below); the data-side indexes stay dense Bitsets.
//
// Determinism contract: both representations compute exact set algebra,
// iterate ascending, and hash identically (the sparse path streams the
// materialized word sequence through the same WordHasher as
// Bitset::Hash), so representation choice can never change mining
// output — only speed. tests/rowset_test.cc pins this property.
#ifndef TOPKRGS_UTIL_ROWSET_H_
#define TOPKRGS_UTIL_ROWSET_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/bitset.h"
#include "util/hot_path.h"

namespace topkrgs {

// --- Sorted-id primitives -----------------------------------------------
//
// Shared by the sparse RowSet representation and the sorted positions
// lists in mine/transposed_table and mine/charm. All inputs must be
// ascending and duplicate-free.
namespace sorted {

/// Binary-search membership test.
bool Contains(const uint32_t* data, size_t n, uint32_t v);

/// |a ∩ b|. Uses a two-pointer merge for similar sizes and switches to
/// galloping (exponential probe + binary search) for the smaller side
/// when the lists are heavily skewed.
size_t IntersectCount(const uint32_t* a, size_t na, const uint32_t* b,
                      size_t nb);

/// a ∩ b appended to *out (out is cleared first).
void Intersect(const uint32_t* a, size_t na, const uint32_t* b, size_t nb,
               std::vector<uint32_t>* out);

/// a \ b appended to *out (out is cleared first).
void Difference(const uint32_t* a, size_t na, const uint32_t* b, size_t nb,
                std::vector<uint32_t>* out);

}  // namespace sorted

/// A set of indices over a fixed universe, stored either as a dense
/// Bitset or as a sorted id array, with the cardinality cached (Count()
/// is O(1) in both representations).
class RowSet {
 public:
  enum class Repr : uint8_t { kDense, kSparse };

  RowSet() = default;

  /// Wraps an existing bitset without converting (always dense). Takes
  /// an rvalue so the full-bitmap copy a by-value sink hid is explicit
  /// at the call site: write DenseFrom(Bitset(bits)) to copy on purpose.
  static RowSet DenseFrom(Bitset&& bits);

  /// Takes an ascending duplicate-free id list (always sparse).
  static RowSet SparseFrom(std::vector<uint32_t> ids, size_t universe);

  /// Converts adaptively: sparse when PreferSparse says the id walk is
  /// cheaper than word scans at this density, dense otherwise.
  static RowSet FromBitset(const Bitset& bits);

  /// Density threshold: sparse wins when the id walk (≈2 cycles/id,
  /// data-dependent) undercuts the dense word scan even on the widest
  /// SIMD tier (≈0.5 cycles/word). Crossover sits near |S| ≈ words/4;
  /// we take the conservative side so dense SIMD keeps every case it
  /// could plausibly win: sparse iff |S| ≤ words(universe)/4, i.e.
  /// density ≤ 1/256.
  static bool PreferSparse(size_t count, size_t universe) {
    const size_t words = (universe + 63) / 64;
    return count <= words / 4;
  }

  Repr repr() const { return repr_; }
  bool is_dense() const { return repr_ == Repr::kDense; }
  bool is_sparse() const { return repr_ == Repr::kSparse; }

  size_t universe() const { return universe_; }
  /// Cardinality; cached, O(1).
  size_t Count() const { return count_; }
  bool None() const { return count_ == 0; }
  bool Any() const { return count_ != 0; }

  TKRGS_HOT bool Test(uint32_t pos) const;

  /// |*this ∩ other| against a dense bitmap of the same universe.
  TKRGS_HOT size_t IntersectCount(const Bitset& other) const;

  /// True iff *this ⊆ other. Sparse path is O(Count()).
  TKRGS_HOT bool IsSubsetOf(const Bitset& other) const;

  /// True iff the sets share an element.
  TKRGS_HOT bool Intersects(const Bitset& other) const;

  /// *this ∩ other as a new RowSet, re-deciding the representation of
  /// the (never larger) result by density.
  RowSet IntersectAdaptive(const Bitset& other) const;

  /// IntersectAdaptive into *out, reusing out's id-array / bitmap
  /// capacity: the zero-allocation steady state of the enumeration and
  /// probe loops. out must not alias this.
  TKRGS_HOT void IntersectAdaptiveInto(const Bitset& other, RowSet* out) const;

  /// a ∩ b as a density-adaptive rowset, without first copying either
  /// input the way DenseFrom(Bitset(a)) + IntersectAdaptive would.
  static RowSet IntersectOf(const Bitset& a, const Bitset& b);

  /// IntersectOf into *out, reusing out's capacity (see
  /// IntersectAdaptiveInto).
  TKRGS_HOT static void IntersectOfInto(const Bitset& a, const Bitset& b,
                                        RowSet* out);

  /// Invokes fn(index) for every element in ascending order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    if (repr_ == Repr::kDense) {
      bits_.ForEach(std::forward<Fn>(fn));
    } else {
      for (const uint32_t id : ids_) fn(static_cast<size_t>(id));
    }
  }

  /// Elements as a sorted id vector.
  std::vector<uint32_t> ToVector() const;

  /// Dense copy of the set (for storage in Bitset-typed sinks).
  Bitset ToBitset() const;

  /// Equals Bitset::Hash() of the same elements over the same universe,
  /// for either representation.
  uint64_t Hash() const;

 private:
  Repr repr_ = Repr::kDense;
  size_t universe_ = 0;
  size_t count_ = 0;
  Bitset bits_;                // kDense payload
  std::vector<uint32_t> ids_;  // kSparse payload, ascending
};

}  // namespace topkrgs

#endif  // TOPKRGS_UTIL_ROWSET_H_
