#ifndef TOPKRGS_UTIL_TIMER_H_
#define TOPKRGS_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace topkrgs {

/// Wall-clock stopwatch used by the benchmark harnesses.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// A soft wall-clock budget that long-running miners poll; lets benchmark
/// drivers report DNF ("did not finish", as the paper does for CHARM and
/// CLOSET+) instead of hanging.
class Deadline {
 public:
  /// Unlimited deadline.
  Deadline() : enabled_(false) {}
  /// Expires `seconds` from now.
  explicit Deadline(double seconds)
      : enabled_(seconds > 0),
        expiry_(Clock::now() +
                std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(seconds > 0 ? seconds : 0))) {}

  static Deadline Unlimited() { return Deadline(); }

  bool Expired() const { return enabled_ && Clock::now() >= expiry_; }

 private:
  using Clock = std::chrono::steady_clock;
  bool enabled_;
  Clock::time_point expiry_{};
};

}  // namespace topkrgs

#endif  // TOPKRGS_UTIL_TIMER_H_
