#ifndef TOPKRGS_UTIL_BITSET_H_
#define TOPKRGS_UTIL_BITSET_H_

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/hot_path.h"
#include "util/status.h"

namespace topkrgs {

/// A fixed-universe dynamic bitset tuned for the set algebra this library
/// runs in its inner loops: itemset intersection (closure computation),
/// subset tests for backward pruning and rule containment, and popcounts
/// for support counting.
///
/// All binary operations require both operands to share the same universe
/// size; this is an invariant of the call sites, checked in debug builds.
class Bitset {
 public:
  using Word = uint64_t;
  static constexpr size_t kWordBits = 64;

  Bitset() = default;
  /// Creates an empty (all-zero) set over a universe of `size` elements.
  explicit Bitset(size_t size)
      : size_(size), words_((size + kWordBits - 1) / kWordBits, 0) {}

  /// Creates a set with every element of the universe present.
  static Bitset AllSet(size_t size);

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void Set(size_t pos) { words_[pos / kWordBits] |= Word{1} << (pos % kWordBits); }
  void Reset(size_t pos) {
    words_[pos / kWordBits] &= ~(Word{1} << (pos % kWordBits));
  }
  bool Test(size_t pos) const {
    return (words_[pos / kWordBits] >> (pos % kWordBits)) & 1;
  }

  /// Clears all bits.
  void Clear();

  /// Number of elements in the set.
  size_t Count() const;

  /// True iff no element is set.
  bool None() const;
  bool Any() const { return !None(); }

  /// In-place intersection: *this &= other.
  TKRGS_HOT void IntersectWith(const Bitset& other);
  /// In-place union: *this |= other.
  void UnionWith(const Bitset& other);
  /// In-place difference: *this &= ~other.
  void SubtractWith(const Bitset& other);

  /// *this = a & b, reusing this bitset's word storage — no allocation
  /// once capacity covers a's universe. Aliasing with a or b is allowed.
  TKRGS_HOT void AssignIntersectionOf(const Bitset& a, const Bitset& b);

  /// |*this & other| without materializing the intersection.
  TKRGS_HOT size_t IntersectCount(const Bitset& other) const;

  /// True iff *this ⊆ other. Early-exits on the first violating word.
  TKRGS_HOT bool IsSubsetOf(const Bitset& other) const;

  /// True iff the two sets share at least one element.
  TKRGS_HOT bool Intersects(const Bitset& other) const;

  /// Index of the lowest set bit, or size() when empty.
  size_t FindFirst() const;
  /// Index of the lowest set bit strictly after `pos`, or size() when none.
  size_t FindNext(size_t pos) const;

  /// Invokes fn(index) for every set bit in ascending order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (size_t w = 0; w < words_.size(); ++w) {
      Word word = words_[w];
      while (word != 0) {
        const int bit = std::countr_zero(word);
        fn(w * kWordBits + static_cast<size_t>(bit));
        word &= word - 1;
      }
    }
  }

  /// Returns the set elements as a sorted vector of indices.
  std::vector<uint32_t> ToVector() const;

  friend bool operator==(const Bitset& a, const Bitset& b) {
    return a.size_ == b.size_ && a.words_ == b.words_;
  }

  /// 64-bit mixing hash over the words; used for closed-set subsumption
  /// indices in CHARM/CLOSET+. Identical across SIMD tiers and across
  /// row-set representations (RowSet::Hash matches for the same set).
  uint64_t Hash() const;

  const std::vector<Word>& words() const { return words_; }

 private:
  size_t size_ = 0;
  std::vector<Word> words_;
};

/// Intersection of two sets as a new bitset.
Bitset Intersect(const Bitset& a, const Bitset& b);
/// Union of two sets as a new bitset.
Bitset Union(const Bitset& a, const Bitset& b);
/// Difference a \ b as a new bitset.
Bitset Subtract(const Bitset& a, const Bitset& b);

}  // namespace topkrgs

#endif  // TOPKRGS_UTIL_BITSET_H_
