#ifndef TOPKRGS_UTIL_WORK_STEAL_DEQUE_H_
#define TOPKRGS_UTIL_WORK_STEAL_DEQUE_H_

#include <atomic>
#include <cstddef>
#include <deque>

#include "util/hot_path.h"
#include "util/lock_ranks.h"
#include "util/thread_annotations.h"

namespace topkrgs {

/// A work-stealing deque of task pointers with the classic owner-LIFO /
/// thief-FIFO discipline: the owning worker pushes and pops at the bottom
/// (newest work first — best locality, deepest subtrees drain before their
/// ancestors' siblings), while thieves steal from the top (oldest work
/// first — the largest outstanding subtrees, amortizing the steal cost).
///
/// The implementation is deliberately lock-cheap rather than lock-free: a
/// single ranked Mutex (lock_rank::kMinerWorkDeque) guards a std::deque,
/// and every operation is a handful of pointer moves under it. The miner's
/// tasks are whole enumeration subtrees — thousands of nodes each — so
/// queue operations are nowhere near the hot path, and the ranked lock
/// buys runtime deadlock checking plus trivially auditable correctness
/// (every pop/steal hands out each pushed task exactly once, which is what
/// the determinism replay relies on). The `size_` mirror is a relaxed
/// atomic so schedulers can poll Empty() without touching the lock.
///
/// T must be trivially copyable (the deque stores task POINTERS; ownership
/// stays with the scheduler). All methods are safe to call from any thread;
/// "owner" and "thief" name the intended discipline, not an enforced one.
template <typename T>
class WorkStealDeque {
 public:
  WorkStealDeque() : mu_(lock_rank::kMinerWorkDeque, "WorkStealDeque::mu_") {}
  WorkStealDeque(const WorkStealDeque&) = delete;
  WorkStealDeque& operator=(const WorkStealDeque&) = delete;

  /// Owner side: makes `task` the newest entry (the next PopBottom result).
  void PushBottom(T task) {
    MutexLock lock(mu_);
    items_.push_back(task);
    size_.store(items_.size(), std::memory_order_relaxed);
  }

  /// Owner side: removes and returns the newest entry, or nullptr when
  /// empty (LIFO — the task pushed last comes back first).
  TKRGS_HOT T PopBottom() {
    MutexLock lock(mu_);
    if (items_.empty()) return nullptr;
    T task = items_.back();
    items_.pop_back();
    size_.store(items_.size(), std::memory_order_relaxed);
    return task;
  }

  /// Thief side: removes and returns the oldest entry, or nullptr when
  /// empty (FIFO — steals take the task the owner has had queued longest).
  TKRGS_HOT T StealTop() {
    MutexLock lock(mu_);
    if (items_.empty()) return nullptr;
    T task = items_.front();
    items_.pop_front();
    size_.store(items_.size(), std::memory_order_relaxed);
    return task;
  }

  /// Lock-free size hint for split/steal heuristics. May be stale by the
  /// time the caller acts on it; PopBottom/StealTop return nullptr on the
  /// race, so staleness costs a retry, never correctness.
  size_t SizeHint() const { return size_.load(std::memory_order_relaxed); }
  bool Empty() const { return SizeHint() == 0; }

 private:
  mutable Mutex mu_;
  std::deque<T> items_ GUARDED_BY(mu_);
  std::atomic<size_t> size_{0};
};

}  // namespace topkrgs

#endif  // TOPKRGS_UTIL_WORK_STEAL_DEQUE_H_
