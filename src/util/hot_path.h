#ifndef TOPKRGS_UTIL_HOT_PATH_H_
#define TOPKRGS_UTIL_HOT_PATH_H_

/// TKRGS_HOT — hot-path purity annotation (DESIGN.md §16).
///
/// Marking a function TKRGS_HOT declares it a root of the mining or
/// serving fast path: the function AND everything transitively reachable
/// from it through the call graph must stay free of
///
///   * heap allocation (operator new, make_unique/make_shared, container
///     or string growth),
///   * lock acquisition below rank lock_rank::kMinerWorkDeque and any
///     blocking syscall or I/O,
///   * implicit copies of the expensive set types (Bitset, RowSet,
///     PrefixTree, RuleGroup),
///   * throw and formatted-string Status/StatusOr construction,
///
/// unless the offending line carries a justified
/// `// NOLINT(hotpath: <why this is bounded/amortized/unreachable>)`.
/// The contract is enforced by tools/lint/astlint.py (ci.sh astlint),
/// which walks the call graph from every annotated root.
///
/// Mirroring util/thread_annotations.h: under clang the macro expands to
/// an annotate attribute the libclang frontend reads straight out of the
/// AST; gcc has no queryable annotation surface, so there it expands to
/// nothing and the lint's internal frontend recognizes the macro token
/// textually. Either way annotated code compiles unchanged everywhere.
#if defined(__clang__) && !defined(SWIG)
#define TKRGS_HOT __attribute__((annotate("tkrgs_hot")))
#else
#define TKRGS_HOT  // no-op outside clang; astlint matches the token
#endif

#endif  // TOPKRGS_UTIL_HOT_PATH_H_
