#ifndef TOPKRGS_UTIL_THREAD_ANNOTATIONS_H_
#define TOPKRGS_UTIL_THREAD_ANNOTATIONS_H_

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "util/lock_ranks.h"

/// Clang Thread Safety Analysis (TSA) shim plus annotated mutex wrappers.
///
/// The macros expand to Clang's `__attribute__((...))` thread-safety
/// attributes when compiling with a TSA-capable compiler and to nothing
/// otherwise (gcc), so annotated code builds everywhere while clang builds
/// with `-Wthread-safety -Werror` turn every missed lock acquisition into a
/// compile error. Conventions (see DESIGN.md §11):
///
///   - Every mutable field shared between threads is either std::atomic or
///     carries GUARDED_BY(mu_) naming the topkrgs::Mutex/SharedMutex that
///     protects it.
///   - Private methods called with a lock already held are annotated
///     REQUIRES(mu_) (exclusive) or REQUIRES_SHARED(mu_).
///   - Raw std::mutex / std::lock_guard are not used for shared state;
///     use Mutex/MutexLock (or SharedMutex/ReaderMutexLock) below so the
///     analysis can see the acquisition.
#if defined(__clang__) && !defined(SWIG)
#define TOPKRGS_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define TOPKRGS_THREAD_ANNOTATION__(x)  // no-op outside clang
#endif

#define CAPABILITY(x) TOPKRGS_THREAD_ANNOTATION__(capability(x))
#define SCOPED_CAPABILITY TOPKRGS_THREAD_ANNOTATION__(scoped_lockable)
#define GUARDED_BY(x) TOPKRGS_THREAD_ANNOTATION__(guarded_by(x))
#define PT_GUARDED_BY(x) TOPKRGS_THREAD_ANNOTATION__(pt_guarded_by(x))
#define ACQUIRED_BEFORE(...) \
  TOPKRGS_THREAD_ANNOTATION__(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) \
  TOPKRGS_THREAD_ANNOTATION__(acquired_after(__VA_ARGS__))
#define REQUIRES(...) \
  TOPKRGS_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  TOPKRGS_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))
#define ACQUIRE(...) \
  TOPKRGS_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  TOPKRGS_THREAD_ANNOTATION__(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) \
  TOPKRGS_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  TOPKRGS_THREAD_ANNOTATION__(release_shared_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) \
  TOPKRGS_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))
#define EXCLUDES(...) TOPKRGS_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))
#define ASSERT_CAPABILITY(x) TOPKRGS_THREAD_ANNOTATION__(assert_capability(x))
#define RETURN_CAPABILITY(x) TOPKRGS_THREAD_ANNOTATION__(lock_returned(x))
#define NO_THREAD_SAFETY_ANALYSIS \
  TOPKRGS_THREAD_ANNOTATION__(no_thread_safety_analysis)

namespace topkrgs {

class CondVar;

/// std::mutex with the TSA capability attribute, so fields can be
/// GUARDED_BY a member of this type and clang verifies every access.
///
/// Long-lived locks are constructed with a rank from util/lock_ranks.h;
/// debug builds then abort (with both stack traces) on any acquisition
/// that does not strictly increase the calling thread's held ranks — the
/// runtime deadlock detector backing the static rank table. The default
/// constructor leaves the lock unranked (exempt).
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  explicit Mutex([[maybe_unused]] int rank,
                 [[maybe_unused]] const char* name = "mutex")
#if TOPKRGS_LOCK_RANK_IS_ON()
      : rank_(rank), name_(name)
#endif
  {
  }
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() {
#if TOPKRGS_LOCK_RANK_IS_ON()
    lock_rank::OnAcquire(this, rank_, name_);
#endif
    mu_.lock();
  }
  void Unlock() RELEASE() {
    mu_.unlock();
#if TOPKRGS_LOCK_RANK_IS_ON()
    lock_rank::OnRelease(this);
#endif
  }
  bool TryLock() TRY_ACQUIRE(true) {
    const bool acquired = mu_.try_lock();
#if TOPKRGS_LOCK_RANK_IS_ON()
    if (acquired) lock_rank::OnTryAcquire(this, rank_, name_);
#endif
    return acquired;
  }

 private:
  friend class CondVar;
  friend class MutexLock;
  std::mutex mu_;
#if TOPKRGS_LOCK_RANK_IS_ON()
  const int rank_ = lock_rank::kUnranked;
  const char* const name_ = "unranked";
#endif
};

/// std::shared_mutex with the TSA capability attribute: exclusive for
/// writers, shared for readers (ReaderMutexLock).
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  explicit SharedMutex([[maybe_unused]] int rank,
                       [[maybe_unused]] const char* name = "shared_mutex")
#if TOPKRGS_LOCK_RANK_IS_ON()
      : rank_(rank), name_(name)
#endif
  {
  }
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() ACQUIRE() {
#if TOPKRGS_LOCK_RANK_IS_ON()
    lock_rank::OnAcquire(this, rank_, name_);
#endif
    mu_.lock();
  }
  void Unlock() RELEASE() {
    mu_.unlock();
#if TOPKRGS_LOCK_RANK_IS_ON()
    lock_rank::OnRelease(this);
#endif
  }
  void LockShared() ACQUIRE_SHARED() {
    // A shared acquisition orders exactly like an exclusive one: readers
    // of a higher-ranked lock may still deadlock against writers of a
    // lower-ranked one, so the rank rule makes no reader exception.
#if TOPKRGS_LOCK_RANK_IS_ON()
    lock_rank::OnAcquire(this, rank_, name_);
#endif
    mu_.lock_shared();
  }
  void UnlockShared() RELEASE_SHARED() {
    mu_.unlock_shared();
#if TOPKRGS_LOCK_RANK_IS_ON()
    lock_rank::OnRelease(this);
#endif
  }

 private:
  std::shared_mutex mu_;
#if TOPKRGS_LOCK_RANK_IS_ON()
  const int rank_ = lock_rank::kUnranked;
  const char* const name_ = "unranked";
#endif
};

/// RAII exclusive lock over a Mutex (std::lock_guard/unique_lock
/// replacement the analysis understands). CondVar::Wait takes one, which
/// is why it wraps std::unique_lock rather than std::lock_guard.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : lock_(mu.mu_, std::defer_lock) {
    // Rank-check BEFORE blocking on the underlying mutex: an inversion
    // must abort with its diagnosis rather than deadlock first.
#if TOPKRGS_LOCK_RANK_IS_ON()
    mu_ = &mu;
    lock_rank::OnAcquire(mu_, mu.rank_, mu.name_);
#endif
    lock_.lock();
  }
  ~MutexLock() RELEASE() {
#if TOPKRGS_LOCK_RANK_IS_ON()
    lock_rank::OnRelease(mu_);
#endif
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
#if TOPKRGS_LOCK_RANK_IS_ON()
  const Mutex* mu_ = nullptr;
#endif
};

/// RAII exclusive (writer) lock over a SharedMutex.
class SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  ~WriterMutexLock() RELEASE() { mu_.Unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// RAII shared (reader) lock over a SharedMutex.
class SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.LockShared();
  }
  ~ReaderMutexLock() RELEASE() { mu_.UnlockShared(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Condition variable working with MutexLock. TSA cannot see through a
/// predicate lambda passed to std::condition_variable::wait (the lambda
/// body reads guarded fields but carries no REQUIRES), so callers write
/// the wait loop explicitly:
///
///   MutexLock lock(mu_);
///   while (!ready_) cv_.Wait(lock);   // ready_ GUARDED_BY(mu_): visible
///                                     // to the analysis in this form
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases the lock, blocks, reacquires before returning.
  /// The caller's capability is held again on return, which is why no
  /// RELEASE/ACQUIRE annotation appears: from the analysis' view the
  /// capability is continuously held across the call.
  void Wait(MutexLock& lock) { cv_.wait(lock.lock_); }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace topkrgs

#endif  // TOPKRGS_UTIL_THREAD_ANNOTATIONS_H_
