#ifndef TOPKRGS_UTIL_LOCK_RANKS_H_
#define TOPKRGS_UTIL_LOCK_RANKS_H_

#include "util/check.h"

/// Central lock-rank table plus the debug-only deadlock detector behind it
/// (DESIGN.md §12).
///
/// Every long-lived Mutex/SharedMutex in the system is constructed with a
/// rank from the table below. The invariant — checked at runtime in debug
/// builds, compiled out in release — is:
///
///   A thread may only acquire a lock whose rank is STRICTLY GREATER than
///   the rank of every lock it already holds.
///
/// Equal ranks are an inversion too: two locks of the same rank (e.g. two
/// miner stripe locks) must never be held simultaneously, because nothing
/// orders them against each other. Unranked locks (kUnranked) opt out of
/// the discipline entirely — they neither constrain nor are constrained —
/// which is reserved for locks provably never nested with ranked ones.
///
/// Because the relation is a single global total order, any interleaving
/// of rank-disciplined acquisitions is acyclic, so a rank-clean run can
/// never deadlock on these locks. A violation aborts immediately with the
/// stack captured when the conflicting lock was acquired AND the current
/// stack, so the cycle is diagnosed from one failure, not from a hung
/// process. The checker is ON whenever TKRGS_DCHECKs are (Debug builds and
/// the asan/tsan/lint presets) and costs nothing in release.
namespace topkrgs {
namespace lock_rank {

/// Exempt from rank checking (the default for Mutex/SharedMutex).
inline constexpr int kUnranked = 0;

/// ---- The rank table -------------------------------------------------
/// Ranks increase inward along every permitted acquisition path: hold a
/// lower rank, acquire a higher one; never the reverse. Gaps leave room
/// for future locks without renumbering.

/// HttpServer::conn_mu_ — connection bookkeeping. Outermost: Stop() holds
/// it while waiting for connections, and a connection thread must remain
/// free to use every lock below while the server tracks it.
inline constexpr int kHttpConnTracking = 100;

/// ModelRegistry::mu_ — model resolution. A request path resolves its
/// model before (or while) submitting work, so the registry orders before
/// the executor queue.
inline constexpr int kModelRegistry = 200;

/// PredictionExecutor::mu_ — request queue. Workers drain under it and
/// then execute lock-free; execution may run a miner, so the queue orders
/// before the miner stripes.
inline constexpr int kExecutorQueue = 300;

/// WorkStealDeque::mu_ — the miner's per-worker subtree-task deques. A
/// worker may publish a freshly split task (deque push) and then insert a
/// rule group into a top-k stripe on the same logical path, so the deque
/// orders before the stripes; the deque's own critical sections are pure
/// pointer queue operations and never acquire anything.
inline constexpr int kMinerWorkDeque = 350;

/// SharedTopk::stripes_ — the miner's per-row top-k stripe locks. Leaf
/// rank: nothing is ever acquired under a stripe, and (same-rank rule)
/// no two stripes are ever held together.
inline constexpr int kMinerTopkStripe = 400;

#if TOPKRGS_DCHECK_IS_ON()
#define TOPKRGS_LOCK_RANK_IS_ON() 1

/// Records `mu` (identity pointer) as held by this thread after checking
/// it against every lock the thread already holds; aborts with both stack
/// traces on a rank inversion. kUnranked locks return immediately.
void OnAcquire(const void* mu, int rank, const char* name);

/// Like OnAcquire but for a successful try-lock: a try-acquisition cannot
/// block, so it is recorded without the inversion check (it still
/// constrains later blocking acquisitions).
void OnTryAcquire(const void* mu, int rank, const char* name);

/// Removes `mu` from this thread's held stack (no-op if absent — e.g. a
/// kUnranked lock, which is never pushed).
void OnRelease(const void* mu);

/// Number of ranked locks the calling thread currently holds (test hook).
int HeldCount();

#else  // !TOPKRGS_DCHECK_IS_ON()
#define TOPKRGS_LOCK_RANK_IS_ON() 0

inline void OnAcquire(const void*, int, const char*) {}
inline void OnTryAcquire(const void*, int, const char*) {}
inline void OnRelease(const void*) {}
inline int HeldCount() { return 0; }

#endif  // TOPKRGS_DCHECK_IS_ON()

}  // namespace lock_rank
}  // namespace topkrgs

#endif  // TOPKRGS_UTIL_LOCK_RANKS_H_
