#include "util/bitkernels.h"

#include <bit>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define TOPKRGS_BITKERNELS_X86 1
#endif

namespace topkrgs {
namespace bitkernels {
namespace {

// ---------------------------------------------------------------------------
// Scalar tier: 4-words-per-iteration blocks. The block shape gives the
// compiler four independent dependency chains (popcount accumulators in
// particular), which is where the win over the old single-accumulator
// loop comes from even without SIMD.
// ---------------------------------------------------------------------------

void ScalarAnd(Word* a, const Word* b, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    a[i + 0] &= b[i + 0];
    a[i + 1] &= b[i + 1];
    a[i + 2] &= b[i + 2];
    a[i + 3] &= b[i + 3];
  }
  for (; i < n; ++i) a[i] &= b[i];
}

void ScalarOr(Word* a, const Word* b, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    a[i + 0] |= b[i + 0];
    a[i + 1] |= b[i + 1];
    a[i + 2] |= b[i + 2];
    a[i + 3] |= b[i + 3];
  }
  for (; i < n; ++i) a[i] |= b[i];
}

void ScalarAndNot(Word* a, const Word* b, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    a[i + 0] &= ~b[i + 0];
    a[i + 1] &= ~b[i + 1];
    a[i + 2] &= ~b[i + 2];
    a[i + 3] &= ~b[i + 3];
  }
  for (; i < n; ++i) a[i] &= ~b[i];
}

size_t ScalarPopcount(const Word* a, size_t n) {
  size_t c0 = 0, c1 = 0, c2 = 0, c3 = 0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    c0 += static_cast<size_t>(std::popcount(a[i + 0]));
    c1 += static_cast<size_t>(std::popcount(a[i + 1]));
    c2 += static_cast<size_t>(std::popcount(a[i + 2]));
    c3 += static_cast<size_t>(std::popcount(a[i + 3]));
  }
  for (; i < n; ++i) c0 += static_cast<size_t>(std::popcount(a[i]));
  return c0 + c1 + c2 + c3;
}

size_t ScalarAndPopcount(const Word* a, const Word* b, size_t n) {
  size_t c0 = 0, c1 = 0, c2 = 0, c3 = 0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    c0 += static_cast<size_t>(std::popcount(a[i + 0] & b[i + 0]));
    c1 += static_cast<size_t>(std::popcount(a[i + 1] & b[i + 1]));
    c2 += static_cast<size_t>(std::popcount(a[i + 2] & b[i + 2]));
    c3 += static_cast<size_t>(std::popcount(a[i + 3] & b[i + 3]));
  }
  for (; i < n; ++i) c0 += static_cast<size_t>(std::popcount(a[i] & b[i]));
  return c0 + c1 + c2 + c3;
}

bool ScalarIsSubset(const Word* sub, const Word* sup, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const Word v = (sub[i + 0] & ~sup[i + 0]) | (sub[i + 1] & ~sup[i + 1]) |
                   (sub[i + 2] & ~sup[i + 2]) | (sub[i + 3] & ~sup[i + 3]);
    if (v != 0) return false;
  }
  for (; i < n; ++i) {
    if ((sub[i] & ~sup[i]) != 0) return false;
  }
  return true;
}

bool ScalarIntersects(const Word* a, const Word* b, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const Word v = (a[i + 0] & b[i + 0]) | (a[i + 1] & b[i + 1]) |
                   (a[i + 2] & b[i + 2]) | (a[i + 3] & b[i + 3]);
    if (v != 0) return true;
  }
  for (; i < n; ++i) {
    if ((a[i] & b[i]) != 0) return true;
  }
  return false;
}

bool ScalarAllZero(const Word* a, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    if ((a[i + 0] | a[i + 1] | a[i + 2] | a[i + 3]) != 0) return false;
  }
  for (; i < n; ++i) {
    if (a[i] != 0) return false;
  }
  return true;
}

constexpr Kernels kScalar = {
    "scalar",      ScalarAnd,      ScalarOr,         ScalarAndNot,
    ScalarPopcount, ScalarAndPopcount, ScalarIsSubset, ScalarIntersects,
    ScalarAllZero,
};

#if TOPKRGS_BITKERNELS_X86

// ---------------------------------------------------------------------------
// AVX2 tier. Per-function target attributes keep the rest of the TU (and
// the build flags) baseline; the pointers are only published after a
// cpuid check, so these bodies never execute on a non-AVX2 machine.
// ---------------------------------------------------------------------------

#define TK_AVX2 __attribute__((target("avx2")))

// Mula nibble-LUT popcount: per-byte counts via two pshufb lookups,
// widened to four 64-bit lane sums with psadbw against zero.
TK_AVX2 inline __m256i Popcount256(__m256i v) {
  const __m256i lut = _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2,
                                       3, 3, 4, 0, 1, 1, 2, 1, 2, 2, 3, 1, 2,
                                       2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low_mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi32(v, 4), low_mask);
  const __m256i cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                                      _mm256_shuffle_epi8(lut, hi));
  return _mm256_sad_epu8(cnt, _mm256_setzero_si256());
}

TK_AVX2 inline size_t HorizontalSum256(__m256i acc) {
  return static_cast<size_t>(_mm256_extract_epi64(acc, 0)) +
         static_cast<size_t>(_mm256_extract_epi64(acc, 1)) +
         static_cast<size_t>(_mm256_extract_epi64(acc, 2)) +
         static_cast<size_t>(_mm256_extract_epi64(acc, 3));
}

TK_AVX2 void Avx2And(Word* a, const Word* b, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(a + i),
                        _mm256_and_si256(va, vb));
  }
  for (; i < n; ++i) a[i] &= b[i];
}

TK_AVX2 void Avx2Or(Word* a, const Word* b, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(a + i),
                        _mm256_or_si256(va, vb));
  }
  for (; i < n; ++i) a[i] |= b[i];
}

TK_AVX2 void Avx2AndNot(Word* a, const Word* b, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    // andnot computes ~first & second, so b goes first.
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(a + i),
                        _mm256_andnot_si256(vb, va));
  }
  for (; i < n; ++i) a[i] &= ~b[i];
}

TK_AVX2 size_t Avx2Popcount(const Word* a, size_t n) {
  __m256i acc = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i v0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i v1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i + 4));
    acc = _mm256_add_epi64(acc, Popcount256(v0));
    acc = _mm256_add_epi64(acc, Popcount256(v1));
  }
  size_t total = HorizontalSum256(acc);
  for (; i < n; ++i) total += static_cast<size_t>(std::popcount(a[i]));
  return total;
}

TK_AVX2 size_t Avx2AndPopcount(const Word* a, const Word* b, size_t n) {
  __m256i acc = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i x0 = _mm256_and_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i)),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i)));
    const __m256i x1 = _mm256_and_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i + 4)),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i + 4)));
    acc = _mm256_add_epi64(acc, Popcount256(x0));
    acc = _mm256_add_epi64(acc, Popcount256(x1));
  }
  size_t total = HorizontalSum256(acc);
  for (; i < n; ++i)
    total += static_cast<size_t>(std::popcount(a[i] & b[i]));
  return total;
}

TK_AVX2 bool Avx2IsSubset(const Word* sub, const Word* sup, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i vsub =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(sub + i));
    const __m256i vsup =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(sup + i));
    // testc sets CF iff (~vsup & vsub) == 0, i.e. vsub ⊆ vsup.
    if (!_mm256_testc_si256(vsup, vsub)) return false;
  }
  for (; i < n; ++i) {
    if ((sub[i] & ~sup[i]) != 0) return false;
  }
  return true;
}

TK_AVX2 bool Avx2Intersects(const Word* a, const Word* b, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    if (!_mm256_testz_si256(va, vb)) return true;
  }
  for (; i < n; ++i) {
    if ((a[i] & b[i]) != 0) return true;
  }
  return false;
}

TK_AVX2 bool Avx2AllZero(const Word* a, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    if (!_mm256_testz_si256(v, v)) return false;
  }
  for (; i < n; ++i) {
    if (a[i] != 0) return false;
  }
  return true;
}

constexpr Kernels kAvx2 = {
    "avx2",       Avx2And,        Avx2Or,        Avx2AndNot,  Avx2Popcount,
    Avx2AndPopcount, Avx2IsSubset, Avx2Intersects, Avx2AllZero,
};

// ---------------------------------------------------------------------------
// AVX-512 tier: VPOPCNTDQ makes AND+popcount a three-instruction body.
// Containment/emptiness use vptestmq masks.
// ---------------------------------------------------------------------------

// gcc-12's unmasked AVX-512 intrinsics expand to masked builtins with an
// _mm512_undefined_*() passthrough operand; once inlined into these
// bodies that reads as an uninitialized use under -Werror even though
// the full mask makes the operand dead. Scoped to this tier only.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wuninitialized"
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"

#define TK_AVX512 \
  __attribute__((target("avx512f,avx512bw,avx512vpopcntdq")))

// Horizontal sum of eight 64-bit lanes: fold to 256 bits, reuse the AVX2
// extract path.
TK_AVX512 size_t HorizontalSum512(__m512i acc) {
  return HorizontalSum256(_mm256_add_epi64(
      _mm512_castsi512_si256(acc), _mm512_extracti64x4_epi64(acc, 1)));
}

TK_AVX512 void Avx512And(Word* a, const Word* b, size_t n) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i va = _mm512_loadu_si512(a + i);
    const __m512i vb = _mm512_loadu_si512(b + i);
    _mm512_storeu_si512(a + i, _mm512_and_si512(va, vb));
  }
  for (; i < n; ++i) a[i] &= b[i];
}

TK_AVX512 void Avx512Or(Word* a, const Word* b, size_t n) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i va = _mm512_loadu_si512(a + i);
    const __m512i vb = _mm512_loadu_si512(b + i);
    _mm512_storeu_si512(a + i, _mm512_or_si512(va, vb));
  }
  for (; i < n; ++i) a[i] |= b[i];
}

TK_AVX512 void Avx512AndNot(Word* a, const Word* b, size_t n) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i va = _mm512_loadu_si512(a + i);
    const __m512i vb = _mm512_loadu_si512(b + i);
    _mm512_storeu_si512(a + i, _mm512_andnot_si512(vb, va));
  }
  for (; i < n; ++i) a[i] &= ~b[i];
}

TK_AVX512 size_t Avx512Popcount(const Word* a, size_t n) {
  __m512i acc = _mm512_setzero_si512();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(_mm512_loadu_si512(a + i)));
  }
  size_t total = HorizontalSum512(acc);
  for (; i < n; ++i) total += static_cast<size_t>(std::popcount(a[i]));
  return total;
}

TK_AVX512 size_t Avx512AndPopcount(const Word* a, const Word* b, size_t n) {
  __m512i acc = _mm512_setzero_si512();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i x = _mm512_and_si512(_mm512_loadu_si512(a + i),
                                       _mm512_loadu_si512(b + i));
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(x));
  }
  size_t total = HorizontalSum512(acc);
  for (; i < n; ++i)
    total += static_cast<size_t>(std::popcount(a[i] & b[i]));
  return total;
}

TK_AVX512 bool Avx512IsSubset(const Word* sub, const Word* sup, size_t n) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i vsub = _mm512_loadu_si512(sub + i);
    const __m512i vsup = _mm512_loadu_si512(sup + i);
    const __m512i stray = _mm512_andnot_si512(vsup, vsub);
    if (_mm512_test_epi64_mask(stray, stray) != 0) return false;
  }
  for (; i < n; ++i) {
    if ((sub[i] & ~sup[i]) != 0) return false;
  }
  return true;
}

TK_AVX512 bool Avx512Intersects(const Word* a, const Word* b, size_t n) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i va = _mm512_loadu_si512(a + i);
    const __m512i vb = _mm512_loadu_si512(b + i);
    if (_mm512_test_epi64_mask(va, vb) != 0) return true;
  }
  for (; i < n; ++i) {
    if ((a[i] & b[i]) != 0) return true;
  }
  return false;
}

TK_AVX512 bool Avx512AllZero(const Word* a, size_t n) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i v = _mm512_loadu_si512(a + i);
    if (_mm512_test_epi64_mask(v, v) != 0) return false;
  }
  for (; i < n; ++i) {
    if (a[i] != 0) return false;
  }
  return true;
}

constexpr Kernels kAvx512 = {
    "avx512",        Avx512And,      Avx512Or,        Avx512AndNot,
    Avx512Popcount,  Avx512AndPopcount, Avx512IsSubset, Avx512Intersects,
    Avx512AllZero,
};

#pragma GCC diagnostic pop

bool CpuHasAvx2() { return __builtin_cpu_supports("avx2") != 0; }

bool CpuHasAvx512Popcnt() {
  return __builtin_cpu_supports("avx512f") != 0 &&
         __builtin_cpu_supports("avx512bw") != 0 &&
         __builtin_cpu_supports("avx512vpopcntdq") != 0;
}

#endif  // TOPKRGS_BITKERNELS_X86

const Kernels& ResolveActive() {
  // src/util is outside the determinism zones, so an environment read is
  // allowed here; the choice cannot change results, only speed (every
  // tier computes exact set algebra — see the header contract).
  const char* mode = std::getenv("TOPKRGS_SIMD");
#if TOPKRGS_BITKERNELS_X86
  const Kernels* avx2 = Avx2Kernels();
  const Kernels* avx512 = Avx512Kernels();
  if (mode != nullptr) {
    if (std::strcmp(mode, "scalar") == 0) return kScalar;
    if (std::strcmp(mode, "avx2") == 0) return avx2 ? *avx2 : kScalar;
    if (std::strcmp(mode, "avx512") == 0) {
      if (avx512 != nullptr) return *avx512;
      return avx2 ? *avx2 : kScalar;
    }
    // Anything else (including "auto") falls through to cpuid.
  }
  if (avx512 != nullptr) return *avx512;
  if (avx2 != nullptr) return *avx2;
  return kScalar;
#else
  (void)mode;
  return kScalar;
#endif
}

}  // namespace

const Kernels& ScalarKernels() { return kScalar; }

const Kernels* Avx2Kernels() {
#if TOPKRGS_BITKERNELS_X86
  static const bool have = CpuHasAvx2();
  return have ? &kAvx2 : nullptr;
#else
  return nullptr;
#endif
}

const Kernels* Avx512Kernels() {
#if TOPKRGS_BITKERNELS_X86
  static const bool have = CpuHasAvx512Popcnt();
  return have ? &kAvx512 : nullptr;
#else
  return nullptr;
#endif
}

const Kernels& ActiveKernels() {
  static const Kernels& active = ResolveActive();
  return active;
}

const char* ActiveKernelName() { return ActiveKernels().name; }

uint64_t HashWords(const Word* w, size_t n, uint64_t seed) {
  WordHasher h(seed);
  for (size_t i = 0; i < n; ++i) h.Consume(w[i]);
  return h.Finish();
}

}  // namespace bitkernels
}  // namespace topkrgs
