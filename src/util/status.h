#ifndef TOPKRGS_UTIL_STATUS_H_
#define TOPKRGS_UTIL_STATUS_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>

namespace topkrgs {

/// Error codes for fallible operations. Algorithmic invariant violations are
/// programming errors and use CHECK-style aborts instead (see CHECK below).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kIOError,
  kOutOfRange,
  kFailedPrecondition,
  kTimeout,
  kResourceExhausted,
  kDeadlineExceeded,
};

/// A Status carries either success (ok) or an error code plus message.
/// Modeled after the Arrow/RocksDB idiom: no exceptions cross the public API.
///
/// [[nodiscard]] on the class makes ignoring ANY function returning Status
/// by value a compiler warning, promoted to an error by
/// -Werror=unused-result (always on, every compiler — see CMakeLists.txt).
/// A call site that genuinely doesn't care must spell it
/// `(void)Call();  // <why the discard is safe>` — policy in DESIGN.md §11.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Timeout(std::string msg) {
    return Status(StatusCode::kTimeout, std::move(msg));
  }
  /// A bounded resource (serving queue, worker pool) is full; the caller
  /// should shed load or retry later. Distinct from Timeout: nothing ran.
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  /// A per-request deadline expired before the work finished (or started).
  /// Distinct from Timeout, which reports a *soft budget* a miner honored
  /// by returning partial results; DeadlineExceeded means no result.
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable "CODE: message" representation.
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Holds either a value of type T or an error Status.
/// Accessing the value of an errored StatusOr aborts.
/// [[nodiscard]]: see Status above — dropping a StatusOr drops the error.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  /*implicit*/ StatusOr(T value) : status_(Status::OK()), value_(std::move(value)) {}
  /*implicit*/ StatusOr(Status status) : status_(std::move(status)) {
    if (status_.ok()) {
      std::fprintf(stderr, "StatusOr constructed from OK status without value\n");
      std::abort();
    }
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    CheckOk();
    return value_;
  }
  T& value() & {
    CheckOk();
    return value_;
  }
  T&& value() && {
    CheckOk();
    return std::move(value_);
  }

 private:
  void CheckOk() const {
    if (!status_.ok()) {
      std::fprintf(stderr, "StatusOr::value() on error: %s\n",
                   status_.ToString().c_str());
      std::abort();
    }
  }

  Status status_;
  T value_{};
};

/// Propagates a non-OK status from an expression to the caller.
#define TOPKRGS_RETURN_NOT_OK(expr)         \
  do {                                      \
    ::topkrgs::Status _st = (expr);         \
    if (!_st.ok()) return _st;              \
  } while (0)

/// Aborts with a message when an internal invariant does not hold.
#define TOPKRGS_CHECK(cond, msg)                                         \
  do {                                                                   \
    if (!(cond)) {                                                       \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", __FILE__,      \
                   __LINE__, (msg));                                     \
      std::abort();                                                      \
    }                                                                    \
  } while (0)

}  // namespace topkrgs

#endif  // TOPKRGS_UTIL_STATUS_H_
