#include "util/rowset.h"

#include <algorithm>
#include <functional>

#include "util/bitkernels.h"
#include "util/check.h"

namespace topkrgs {

namespace bk = bitkernels;

namespace sorted {
namespace {

/// First index in [lo, n) with data[index] >= v, probing exponentially
/// from lo before the binary search so short forward hops stay O(1).
size_t GallopLowerBound(const uint32_t* data, size_t n, size_t lo,
                        uint32_t v) {
  size_t step = 1;
  size_t hi = lo;
  while (hi < n && data[hi] < v) {
    lo = hi + 1;
    hi += step;
    step <<= 1;
  }
  if (hi > n) hi = n;
  return static_cast<size_t>(
      std::lower_bound(data + lo, data + hi, v) - data);
}

// Below this size ratio the two-pointer merge beats galloping; with a
// heavier skew the log-probes on the long side win.
constexpr size_t kGallopSkew = 16;

}  // namespace

bool Contains(const uint32_t* data, size_t n, uint32_t v) {
  return std::binary_search(data, data + n, v);
}

size_t IntersectCount(const uint32_t* a, size_t na, const uint32_t* b,
                      size_t nb) {
  if (na > nb) {
    std::swap(a, b);
    std::swap(na, nb);
  }
  size_t count = 0;
  if (na * kGallopSkew < nb) {
    size_t j = 0;
    for (size_t i = 0; i < na; ++i) {
      j = GallopLowerBound(b, nb, j, a[i]);
      if (j == nb) break;
      if (b[j] == a[i]) {
        ++count;
        ++j;
      }
    }
    return count;
  }
  size_t i = 0, j = 0;
  while (i < na && j < nb) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

void Intersect(const uint32_t* a, size_t na, const uint32_t* b, size_t nb,
               std::vector<uint32_t>* out) {
  out->clear();
  if (na > nb) {
    std::swap(a, b);
    std::swap(na, nb);
  }
  if (na * kGallopSkew < nb) {
    size_t j = 0;
    for (size_t i = 0; i < na; ++i) {
      j = GallopLowerBound(b, nb, j, a[i]);
      if (j == nb) break;
      if (b[j] == a[i]) {
        out->push_back(a[i]);
        ++j;
      }
    }
    return;
  }
  size_t i = 0, j = 0;
  while (i < na && j < nb) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      out->push_back(a[i]);
      ++i;
      ++j;
    }
  }
}

void Difference(const uint32_t* a, size_t na, const uint32_t* b, size_t nb,
                std::vector<uint32_t>* out) {
  out->clear();
  size_t i = 0, j = 0;
  while (i < na && j < nb) {
    if (a[i] < b[j]) {
      out->push_back(a[i]);
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++i;
      ++j;
    }
  }
  for (; i < na; ++i) out->push_back(a[i]);
}

}  // namespace sorted

RowSet RowSet::DenseFrom(Bitset&& bits) {
  RowSet out;
  out.repr_ = Repr::kDense;
  out.universe_ = bits.size();
  out.count_ = bits.Count();
  out.bits_ = std::move(bits);
  return out;
}

RowSet RowSet::SparseFrom(std::vector<uint32_t> ids, size_t universe) {
  TKRGS_DCHECK_SORTED_UNIQUE(ids.begin(), ids.end(), std::less<uint32_t>(),
                             "sparse rowset ids must be ascending unique");
  TKRGS_DCHECK(ids.empty() || ids.back() < universe,
               "sparse rowset id outside universe");
  RowSet out;
  out.repr_ = Repr::kSparse;
  out.universe_ = universe;
  out.count_ = ids.size();
  out.ids_ = std::move(ids);
  return out;
}

RowSet RowSet::FromBitset(const Bitset& bits) {
  const size_t count = bits.Count();
  if (PreferSparse(count, bits.size())) {
    return SparseFrom(bits.ToVector(), bits.size());
  }
  RowSet out;
  out.repr_ = Repr::kDense;
  out.universe_ = bits.size();
  out.count_ = count;
  out.bits_ = bits;
  return out;
}

bool RowSet::Test(uint32_t pos) const {
  if (repr_ == Repr::kDense) return bits_.Test(pos);
  return sorted::Contains(ids_.data(), ids_.size(), pos);
}

size_t RowSet::IntersectCount(const Bitset& other) const {
  TOPKRGS_CHECK(universe_ == other.size(), "rowset universe mismatch");
  if (repr_ == Repr::kDense) return bits_.IntersectCount(other);
  size_t count = 0;
  for (const uint32_t id : ids_) count += other.Test(id) ? 1 : 0;
  return count;
}

bool RowSet::IsSubsetOf(const Bitset& other) const {
  TOPKRGS_CHECK(universe_ == other.size(), "rowset universe mismatch");
  if (repr_ == Repr::kDense) return bits_.IsSubsetOf(other);
  for (const uint32_t id : ids_) {
    if (!other.Test(id)) return false;
  }
  return true;
}

bool RowSet::Intersects(const Bitset& other) const {
  TOPKRGS_CHECK(universe_ == other.size(), "rowset universe mismatch");
  if (repr_ == Repr::kDense) return bits_.Intersects(other);
  for (const uint32_t id : ids_) {
    if (other.Test(id)) return true;
  }
  return false;
}

RowSet RowSet::IntersectAdaptive(const Bitset& other) const {
  TOPKRGS_CHECK(universe_ == other.size(), "rowset universe mismatch");
  if (repr_ == Repr::kSparse) {
    // The result only shrinks, so a sparse input stays sparse.
    std::vector<uint32_t> kept;
    kept.reserve(ids_.size());
    for (const uint32_t id : ids_) {
      if (other.Test(id)) kept.push_back(id);
    }
    return SparseFrom(std::move(kept), universe_);
  }
  Bitset result = Intersect(bits_, other);
  const size_t count = result.Count();
  if (PreferSparse(count, universe_)) {
    return SparseFrom(result.ToVector(), universe_);
  }
  RowSet out;
  out.repr_ = Repr::kDense;
  out.universe_ = universe_;
  out.count_ = count;
  out.bits_ = std::move(result);
  return out;
}

void RowSet::IntersectAdaptiveInto(const Bitset& other, RowSet* out) const {
  TOPKRGS_CHECK(universe_ == other.size(), "rowset universe mismatch");
  TKRGS_DCHECK(out != this, "IntersectAdaptiveInto must not alias its input");
  out->universe_ = universe_;
  if (repr_ == Repr::kSparse) {
    // The result only shrinks, so a sparse input stays sparse; refilling
    // out->ids_ in place keeps its capacity from earlier, larger probes.
    out->repr_ = Repr::kSparse;
    out->ids_.clear();
    for (const uint32_t id : ids_) {
      // NOLINT(hotpath: refills the caller's retained capacity — the
      // whole point of the Into form; amortized zero across probes)
      if (other.Test(id)) out->ids_.push_back(id);
    }
    out->count_ = out->ids_.size();
    return;
  }
  const size_t count = bits_.IntersectCount(other);
  if (PreferSparse(count, universe_)) {
    out->repr_ = Repr::kSparse;
    out->ids_.clear();
    out->ids_.reserve(count);  // NOLINT(hotpath: retained capacity)
    bits_.ForEach([&](size_t r) {
      // NOLINT(hotpath: within the reservation above; amortized zero)
      // NOLINT(cast: ForEach yields bit positions < universe, a uint32)
      if (other.Test(r)) out->ids_.push_back(static_cast<uint32_t>(r));
    });
    out->count_ = count;
    return;
  }
  out->repr_ = Repr::kDense;
  out->count_ = count;
  out->bits_.AssignIntersectionOf(bits_, other);
}

RowSet RowSet::IntersectOf(const Bitset& a, const Bitset& b) {
  RowSet out;
  IntersectOfInto(a, b, &out);
  return out;
}

void RowSet::IntersectOfInto(const Bitset& a, const Bitset& b, RowSet* out) {
  TOPKRGS_CHECK(a.size() == b.size(), "bitset universe mismatch");
  out->universe_ = a.size();
  const size_t count = a.IntersectCount(b);
  if (PreferSparse(count, a.size())) {
    out->repr_ = Repr::kSparse;
    out->ids_.clear();
    out->ids_.reserve(count);  // NOLINT(hotpath: retained capacity)
    a.ForEach([&](size_t r) {
      // NOLINT(hotpath: within the reservation above; amortized zero)
      // NOLINT(cast: ForEach yields bit positions < universe, a uint32)
      if (b.Test(r)) out->ids_.push_back(static_cast<uint32_t>(r));
    });
    out->count_ = count;
    return;
  }
  out->repr_ = Repr::kDense;
  out->count_ = count;
  out->bits_.AssignIntersectionOf(a, b);
}

std::vector<uint32_t> RowSet::ToVector() const {
  if (repr_ == Repr::kDense) return bits_.ToVector();
  return ids_;
}

Bitset RowSet::ToBitset() const {
  if (repr_ == Repr::kDense) return bits_;
  Bitset out(universe_);
  for (const uint32_t id : ids_) out.Set(id);
  return out;
}

uint64_t RowSet::Hash() const {
  if (repr_ == Repr::kDense) return bits_.Hash();
  // Stream the word sequence the dense form would hold — zero words
  // included — through the same hasher, so both representations agree.
  const size_t words = (universe_ + 63) / 64;
  bk::WordHasher h(bk::kHashSeed ^ static_cast<uint64_t>(universe_));
  size_t i = 0;
  for (size_t w = 0; w < words; ++w) {
    uint64_t word = 0;
    while (i < ids_.size() && ids_[i] / 64 == w) {
      word |= uint64_t{1} << (ids_[i] % 64);
      ++i;
    }
    h.Consume(word);
  }
  return h.Finish();
}

}  // namespace topkrgs
