#ifndef TOPKRGS_UTIL_CHECK_H_
#define TOPKRGS_UTIL_CHECK_H_

#include <algorithm>
#include <cstdio>
#include <cstdlib>

/// Debug invariant-checking framework (DESIGN.md §11).
///
/// TKRGS_DCHECK* document and enforce internal invariants — the properties
/// the paper's correctness arguments rest on (sorted/deduped top-k lists,
/// monotone minconf, closure consistency) — in the builds meant to catch
/// bugs: anything compiled with TOPKRGS_ENABLE_DCHECK (the Debug, asan and
/// tsan presets). In release builds they compile to nothing: the condition
/// is NOT evaluated, so a DCHECK may call arbitrarily expensive validation
/// (full-tree walks) without taxing the hot path.
///
/// TKRGS_DCHECK is for programming errors only. Errors reachable from
/// user input must return Status (see util/status.h), never DCHECK.
///
/// TOPKRGS_DCHECK_IS_ON() lets tests and callers branch on whether the
/// checks are compiled in (death tests only make sense when they are).
#ifdef TOPKRGS_ENABLE_DCHECK
#define TOPKRGS_DCHECK_IS_ON() 1
#else
#define TOPKRGS_DCHECK_IS_ON() 0
#endif

namespace topkrgs {
namespace internal {

[[noreturn]] inline void DcheckFail(const char* file, int line,
                                    const char* expr, const char* msg) {
  std::fprintf(stderr, "DCHECK failed at %s:%d: %s%s%s\n", file, line, expr,
               (msg != nullptr && msg[0] != '\0') ? " — " : "",
               msg != nullptr ? msg : "");
  std::abort();
}

/// Strictly-sorted / sorted checks over any forward range, used by the
/// TKRGS_DCHECK_SORTED* macros so the range walk is compiled out with them.
template <typename It, typename Less>
bool RangeIsSorted(It first, It last, Less less) {
  return std::is_sorted(first, last, less);
}

template <typename It, typename Less>
bool RangeIsSortedUnique(It first, It last, Less less) {
  if (first == last) return true;
  It next = first;
  for (++next; next != last; ++first, ++next) {
    if (!less(*first, *next)) return false;  // equal or out of order
  }
  return true;
}

}  // namespace internal
}  // namespace topkrgs

#if TOPKRGS_DCHECK_IS_ON()

#define TKRGS_DCHECK(cond, msg)                                         \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::topkrgs::internal::DcheckFail(__FILE__, __LINE__, #cond, (msg)); \
    }                                                                   \
  } while (0)

#define TKRGS_DCHECK_OP__(op, a, b, msg) \
  TKRGS_DCHECK((a)op(b), msg)

/// Range [first, last) is non-decreasing under `less`.
#define TKRGS_DCHECK_SORTED(first, last, less, msg) \
  TKRGS_DCHECK(                                     \
      (::topkrgs::internal::RangeIsSorted((first), (last), (less))), msg)

/// Range [first, last) is strictly increasing under `less` (sorted AND
/// duplicate-free) — the shape every antecedent item list and per-row
/// top-k list must have.
#define TKRGS_DCHECK_SORTED_UNIQUE(first, last, less, msg) \
  TKRGS_DCHECK(                                            \
      (::topkrgs::internal::RangeIsSortedUnique((first), (last), (less))), msg)

#else  // !TOPKRGS_DCHECK_IS_ON()

// Release: nothing is evaluated; `if (false)` keeps the operands
// name-checked by the compiler so a DCHECK can't silently rot.
#define TKRGS_DCHECK(cond, msg)  \
  do {                           \
    if (false) {                 \
      (void)(cond);              \
      (void)(msg);               \
    }                            \
  } while (0)

#define TKRGS_DCHECK_OP__(op, a, b, msg) TKRGS_DCHECK((a)op(b), msg)

#define TKRGS_DCHECK_SORTED(first, last, less, msg) \
  TKRGS_DCHECK(                                     \
      (::topkrgs::internal::RangeIsSorted((first), (last), (less))), msg)

#define TKRGS_DCHECK_SORTED_UNIQUE(first, last, less, msg) \
  TKRGS_DCHECK(                                            \
      (::topkrgs::internal::RangeIsSortedUnique((first), (last), (less))), msg)

#endif  // TOPKRGS_DCHECK_IS_ON()

#define TKRGS_DCHECK_EQ(a, b, msg) TKRGS_DCHECK_OP__(==, a, b, msg)
#define TKRGS_DCHECK_NE(a, b, msg) TKRGS_DCHECK_OP__(!=, a, b, msg)
#define TKRGS_DCHECK_LE(a, b, msg) TKRGS_DCHECK_OP__(<=, a, b, msg)
#define TKRGS_DCHECK_LT(a, b, msg) TKRGS_DCHECK_OP__(<, a, b, msg)
#define TKRGS_DCHECK_GE(a, b, msg) TKRGS_DCHECK_OP__(>=, a, b, msg)
#define TKRGS_DCHECK_GT(a, b, msg) TKRGS_DCHECK_OP__(>, a, b, msg)

#endif  // TOPKRGS_UTIL_CHECK_H_
