#ifndef TOPKRGS_UTIL_RANDOM_H_
#define TOPKRGS_UTIL_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace topkrgs {

/// Deterministic, fast PRNG (xoshiro256**) used for synthetic data
/// generation, bootstrap resampling and property-test dataset sweeps.
/// std::mt19937 distributions are not bit-stable across standard library
/// implementations; this generator plus our own distribution code keeps
/// every experiment reproducible from its seed alone.
///
/// There is deliberately no default seed and no std::random_device /
/// wall-clock seeding path: every construction names its seed, so any
/// randomized result (cross-validation folds, synthetic datasets,
/// bootstrap draws) is reproducible end to end from the CLI `--seed`
/// flag. The determinism lint (DESIGN.md §12) enforces the absence of
/// ambient entropy sources in result-affecting code.
class Rng {
 public:
  /// Seeds the state via SplitMix64 expansion of `seed`. The seed is
  /// required: a caller that wants an arbitrary stream still has to write
  /// the constant down, which is what makes the run replayable.
  explicit Rng(uint64_t seed);

  /// Uniform 64-bit word.
  uint64_t Next();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform integer in [0, bound) using rejection to avoid modulo bias.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Standard normal variate (Box–Muller, cached pair).
  double NextGaussian();

  /// Normal variate with the given mean and standard deviation.
  double NextGaussian(double mean, double stddev) {
    return mean + stddev * NextGaussian();
  }

  /// Bernoulli draw with probability p of true.
  bool NextBool(double p) { return NextDouble() < p; }

  /// Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      const size_t j = static_cast<size_t>(NextBounded(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// k distinct indices sampled uniformly from [0, n).
  std::vector<uint32_t> SampleWithoutReplacement(uint32_t n, uint32_t k);

 private:
  uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace topkrgs

#endif  // TOPKRGS_UTIL_RANDOM_H_
