#ifndef TOPKRGS_UTIL_SOCKET_H_
#define TOPKRGS_UTIL_SOCKET_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.h"

namespace topkrgs {

/// Thin Status-returning wrappers over POSIX TCP sockets — just enough for
/// the dependency-free HTTP/1.1 server in src/serve and its test/bench
/// clients. IPv4 loopback/any only; every fd returned is blocking and must
/// be closed with CloseSocket.

/// Listens on 127.0.0.1:`port` (port 0 = kernel-assigned ephemeral port).
/// On success returns the listening fd and stores the bound port in
/// `*bound_port` — that is how a test starts a server on "--port 0" and
/// learns where it actually lives.
[[nodiscard]] StatusOr<int> ListenTcp(uint16_t port, uint16_t* bound_port);

/// Blocks until a client connects; returns the connection fd. The listener
/// being closed from another thread surfaces as IOError, which the accept
/// loop uses as its shutdown signal.
[[nodiscard]] StatusOr<int> AcceptConn(int listen_fd);

/// Connects to 127.0.0.1:`port`.
[[nodiscard]] StatusOr<int> ConnectTcp(uint16_t port);

/// Writes all of `data`, looping over partial writes.
[[nodiscard]] Status SendAll(int fd, std::string_view data);

/// Reads until EOF (peer close) or `max_bytes`, appending to `*out`.
[[nodiscard]] Status RecvAll(int fd, std::string* out, size_t max_bytes = 1 << 26);

/// Reads at most `max_bytes` once; returns the bytes read (empty = EOF).
[[nodiscard]] StatusOr<std::string> RecvSome(int fd, size_t max_bytes);

/// Disables further sends/receives (shutdown(SHUT_RDWR)) without releasing
/// the fd. On a listening socket this wakes threads blocked in accept() —
/// which plain close() does NOT do on Linux — so it is the mandatory first
/// step of shutting down an accept loop from another thread.
void ShutdownSocket(int fd);

void CloseSocket(int fd);

}  // namespace topkrgs

#endif  // TOPKRGS_UTIL_SOCKET_H_
