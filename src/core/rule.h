#ifndef TOPKRGS_CORE_RULE_H_
#define TOPKRGS_CORE_RULE_H_

#include <cstdint>
#include <string>

#include "core/dataset.h"
#include "core/types.h"
#include "util/bitset.h"

namespace topkrgs {

/// An association rule A -> c where A is an itemset and c a class label.
/// support = |R(A ∪ c)|, antecedent_support = |R(A)|,
/// confidence = support / antecedent_support.
struct Rule {
  Bitset antecedent;
  ClassLabel consequent = 0;
  uint32_t support = 0;
  uint32_t antecedent_support = 0;

  double confidence() const {
    return antecedent_support == 0
               ? 0.0
               : static_cast<double>(support) / antecedent_support;
  }

  /// "{i3,i7} -> 1 (sup=5, conf=0.83)" style rendering for logs/examples.
  std::string ToString() const;
};

/// A rule group, represented by its unique upper bound rule (Lemma 2.1):
/// the maximal antecedent shared by every rule derived from the same
/// antecedent support set.
struct RuleGroup {
  /// Upper bound antecedent: I(R), the closure of the group.
  Bitset antecedent;
  /// Antecedent support set R over all rows (both classes).
  Bitset row_support;
  ClassLabel consequent = 0;
  /// Rows of `consequent` class in row_support.
  uint32_t support = 0;
  /// |row_support|.
  uint32_t antecedent_support = 0;

  double confidence() const {
    return antecedent_support == 0
               ? 0.0
               : static_cast<double>(support) / antecedent_support;
  }

  std::string ToString() const;

  /// Structural invariants every well-formed rule group satisfies
  /// (Lemma 2.1 ties the counts to the support set): support <=
  /// antecedent_support == |row_support| (so confidence lands in [0, 1]),
  /// and a non-empty support set for any group with support counted.
  /// Returns false and describes the first violation in *error (when
  /// non-null); never aborts — callers needing the abort use
  /// ValidateInvariants().
  bool CheckInvariants(std::string* error = nullptr) const;

  /// TKRGS_DCHECKs CheckInvariants() — aborts in DCHECK-enabled builds
  /// (Debug/asan/tsan presets), compiles to nothing in release.
  void ValidateInvariants() const;
};

/// Exact comparison of rule significances (Definition 2.2) without floating
/// point: confidence sup1/as1 vs sup2/as2 compared by cross-multiplication.
/// Returns +1 when (sup1, as1) is more significant, -1 when less, 0 on ties
/// (equal confidence and equal support).
int CompareSignificance(uint32_t sup1, uint32_t as1, uint32_t sup2,
                        uint32_t as2);

/// True iff rule group a is more significant than b (Definition 2.2).
bool MoreSignificant(const RuleGroup& a, const RuleGroup& b);

/// Computes the full RuleGroup whose antecedent support set is R(itemset):
/// closes the itemset against `data` and counts class support.
RuleGroup CloseItemset(const DiscreteDataset& data, const Bitset& itemset,
                       ClassLabel consequent);

}  // namespace topkrgs

#endif  // TOPKRGS_CORE_RULE_H_
