#include "core/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/status.h"

namespace topkrgs {

double Entropy(const std::vector<uint32_t>& counts) {
  uint64_t total = 0;
  for (uint32_t c : counts) total += c;
  if (total == 0) return 0.0;
  double h = 0.0;
  for (uint32_t c : counts) {
    if (c == 0) continue;
    const double p = static_cast<double>(c) / static_cast<double>(total);
    h -= p * std::log2(p);
  }
  return h;
}

double PartitionEntropy(const std::vector<std::vector<uint32_t>>& partitions) {
  uint64_t total = 0;
  for (const auto& part : partitions) {
    for (uint32_t c : part) total += c;
  }
  if (total == 0) return 0.0;
  double h = 0.0;
  for (const auto& part : partitions) {
    uint64_t part_total = 0;
    for (uint32_t c : part) part_total += c;
    if (part_total == 0) continue;
    h += (static_cast<double>(part_total) / static_cast<double>(total)) *
         Entropy(part);
  }
  return h;
}

double InformationGain(const std::vector<uint32_t>& total,
                       const std::vector<std::vector<uint32_t>>& partitions) {
  return Entropy(total) - PartitionEntropy(partitions);
}

double ChiSquare(const std::vector<std::vector<uint32_t>>& table) {
  if (table.empty()) return 0.0;
  const size_t cols = table[0].size();
  std::vector<uint64_t> row_totals(table.size(), 0);
  std::vector<uint64_t> col_totals(cols, 0);
  uint64_t grand = 0;
  for (size_t r = 0; r < table.size(); ++r) {
    TOPKRGS_CHECK(table[r].size() == cols, "ragged contingency table");
    for (size_t c = 0; c < cols; ++c) {
      row_totals[r] += table[r][c];
      col_totals[c] += table[r][c];
      grand += table[r][c];
    }
  }
  if (grand == 0) return 0.0;
  double chi = 0.0;
  for (size_t r = 0; r < table.size(); ++r) {
    for (size_t c = 0; c < cols; ++c) {
      const double expected = static_cast<double>(row_totals[r]) *
                              static_cast<double>(col_totals[c]) /
                              static_cast<double>(grand);
      if (expected <= 0.0) continue;
      const double diff = static_cast<double>(table[r][c]) - expected;
      chi += diff * diff / expected;
    }
  }
  return chi;
}

namespace {

/// Sorts (value, label) pairs and evaluates every boundary threshold,
/// returning class histograms of the best binary split by info gain.
/// Returns false when no split exists (constant feature).
bool BestBinarySplit(const std::vector<double>& values,
                     const std::vector<uint8_t>& labels, uint32_t num_classes,
                     std::vector<uint32_t>* best_left,
                     std::vector<uint32_t>* best_right) {
  TOPKRGS_CHECK(values.size() == labels.size(), "values/labels size mismatch");
  const size_t n = values.size();
  if (n < 2) return false;

  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return values[a] < values[b];
  });

  std::vector<uint32_t> total(num_classes, 0);
  for (uint8_t l : labels) ++total[l];

  std::vector<uint32_t> left(num_classes, 0);
  std::vector<uint32_t> right = total;
  double best_cond = -1.0;
  bool found = false;
  for (size_t i = 0; i + 1 < n; ++i) {
    const uint8_t l = labels[order[i]];
    ++left[l];
    --right[l];
    if (values[order[i]] == values[order[i + 1]]) continue;
    const double cond = PartitionEntropy({left, right});
    if (!found || cond < best_cond) {
      best_cond = cond;
      *best_left = left;
      *best_right = right;
      found = true;
    }
  }
  return found;
}

}  // namespace

double BestSplitInfoGain(const std::vector<double>& values,
                         const std::vector<uint8_t>& labels,
                         uint32_t num_classes) {
  std::vector<uint32_t> left, right;
  if (!BestBinarySplit(values, labels, num_classes, &left, &right)) return 0.0;
  std::vector<uint32_t> total(num_classes, 0);
  for (uint8_t l : labels) ++total[l];
  return InformationGain(total, {left, right});
}

double BestSplitChiSquare(const std::vector<double>& values,
                          const std::vector<uint8_t>& labels,
                          uint32_t num_classes) {
  std::vector<uint32_t> left, right;
  if (!BestBinarySplit(values, labels, num_classes, &left, &right)) return 0.0;
  return ChiSquare({left, right});
}

}  // namespace topkrgs
