#include "core/dataset.h"

#include <algorithm>
#include <cstdio>
#include <string_view>

#include "util/io.h"
#include "util/safe_math.h"

namespace topkrgs {

ContinuousDataset::ContinuousDataset(uint32_t num_genes)
    : num_genes_(num_genes) {
  gene_names_.reserve(num_genes);
  for (uint32_t g = 0; g < num_genes; ++g) {
    gene_names_.push_back("G" + std::to_string(g));
  }
}

void ContinuousDataset::AddRow(const std::vector<double>& values,
                               ClassLabel label) {
  TOPKRGS_CHECK(values.size() == num_genes_, "row width != num_genes");
  values_.insert(values_.end(), values.begin(), values.end());
  labels_.push_back(label);
  if (uint32_t{label} + 1 > num_classes_) {
    num_classes_ = uint32_t{label} + 1;
  }
}

std::vector<double> ContinuousDataset::GeneColumn(GeneId gene) const {
  std::vector<double> col(num_rows());
  for (RowId r = 0; r < num_rows(); ++r) col[r] = value(r, gene);
  return col;
}

std::vector<uint32_t> ContinuousDataset::ClassCounts() const {
  std::vector<uint32_t> counts(num_classes_, 0);
  for (ClassLabel l : labels_) ++counts[l];
  return counts;
}

Status ContinuousDataset::WriteTsv(const std::string& path) const {
  std::vector<std::string> lines;
  lines.reserve(num_rows() + 1);
  std::string header = "label";
  for (const auto& name : gene_names_) {
    header += '\t';
    header += name;
  }
  lines.push_back(std::move(header));
  for (RowId r = 0; r < num_rows(); ++r) {
    std::string line = std::to_string(int{labels_[r]});
    char buf[64];
    for (GeneId g = 0; g < num_genes_; ++g) {
      std::snprintf(buf, sizeof(buf), "\t%.17g", value(r, g));
      line += buf;
    }
    lines.push_back(std::move(line));
  }
  return WriteLines(path, lines);
}

StatusOr<ContinuousDataset> ContinuousDataset::ParseTsv(
    const std::vector<std::string>& lines) {
  if (lines.empty()) return Status::InvalidArgument("empty dataset file");

  const auto header = SplitString(lines[0], '\t');
  if (header.empty() || header[0] != "label") {
    return Status::InvalidArgument("missing 'label' header column");
  }
  // Untrusted width: a pathological header with > 2^32 columns must be
  // rejected, not truncated into a smaller (colliding) gene universe.
  auto num_genes_or =
      CheckedCast<uint32_t>(header.size() - 1, "gene column count");
  if (!num_genes_or.ok()) return num_genes_or.status();
  const uint32_t num_genes = num_genes_or.value();
  ContinuousDataset ds(num_genes);
  for (uint32_t g = 0; g < num_genes; ++g) {
    ds.set_gene_name(g, std::string(header[g + 1]));
  }
  std::vector<double> row(num_genes);
  for (size_t i = 1; i < lines.size(); ++i) {
    if (lines[i].empty()) continue;
    const auto fields = SplitString(lines[i], '\t');
    if (fields.size() != header.size()) {
      return Status::InvalidArgument("row " + std::to_string(i) +
                                     " has wrong field count");
    }
    auto label_or = ParseUint(fields[0]);
    if (!label_or.ok()) return label_or.status();
    if (label_or.value() >= kMaxClasses) {
      return Status::InvalidArgument("class label out of range: " +
                                     std::string(fields[0]));
    }
    for (uint32_t g = 0; g < num_genes; ++g) {
      // Non-finite expression values would poison the value sort inside
      // the entropy discretizer (NaN breaks strict weak ordering).
      auto v = ParseFiniteDouble(fields[g + 1]);
      if (!v.ok()) return v.status();
      row[g] = v.value();
    }
    // NOLINT(cast: < kMaxClasses = 256 rejected above, fits ClassLabel)
    ds.AddRow(row, static_cast<ClassLabel>(label_or.value()));
  }
  if (ds.num_rows() == 0) {
    return Status::InvalidArgument("dataset has no data rows");
  }
  return ds;
}

StatusOr<ContinuousDataset> ContinuousDataset::ReadTsv(const std::string& path) {
  auto lines_or = ReadLines(path);
  if (!lines_or.ok()) return lines_or.status();
  return ParseTsv(lines_or.value());
}

DiscreteDataset::DiscreteDataset(uint32_t num_items,
                                 std::vector<std::vector<ItemId>> rows,
                                 std::vector<ClassLabel> labels)
    : num_items_(num_items), rows_(std::move(rows)), labels_(std::move(labels)) {
  TOPKRGS_CHECK(rows_.size() == labels_.size(), "rows/labels size mismatch");
  for (auto& row : rows_) {
    std::sort(row.begin(), row.end());
    row.erase(std::unique(row.begin(), row.end()), row.end());
    for (ItemId item : row) {
      TOPKRGS_CHECK(item < num_items_, "item id out of range");
    }
  }
  for (ClassLabel l : labels_) {
    if (uint32_t{l} + 1 > num_classes_) {
      num_classes_ = uint32_t{l} + 1;
    }
  }
  BuildIndexes();
}

void DiscreteDataset::BuildIndexes() {
  const uint32_t n = num_rows();
  row_bitsets_.assign(n, Bitset(num_items_));
  item_rowsets_.assign(num_items_, Bitset(n));
  for (RowId r = 0; r < n; ++r) {
    for (ItemId item : rows_[r]) {
      row_bitsets_[r].Set(item);
      item_rowsets_[item].Set(r);
    }
  }
}

Bitset DiscreteDataset::ItemSupportSet(const Bitset& itemset) const {
  Bitset rows = Bitset::AllSet(num_rows());
  itemset.ForEach([&](size_t item) { rows.IntersectWith(item_rowsets_[item]); });
  return rows;
}

Bitset DiscreteDataset::RowSupportSet(const Bitset& rowset) const {
  Bitset items = Bitset::AllSet(num_items_);
  rowset.ForEach([&](size_t row) { items.IntersectWith(row_bitsets_[row]); });
  return items;
}

std::vector<uint32_t> DiscreteDataset::ClassCounts() const {
  std::vector<uint32_t> counts(num_classes_, 0);
  for (ClassLabel l : labels_) ++counts[l];
  return counts;
}

Bitset DiscreteDataset::ClassRowset(ClassLabel cls) const {
  Bitset rows(num_rows());
  for (RowId r = 0; r < num_rows(); ++r) {
    if (labels_[r] == cls) rows.Set(r);
  }
  return rows;
}

DiscreteDataset DiscreteDataset::FilterInfrequentItems(
    uint32_t min_support, std::vector<ItemId>* kept_items) const {
  std::vector<ItemId> remap(num_items_, kInvalidId);
  std::vector<ItemId> kept;
  for (ItemId i = 0; i < num_items_; ++i) {
    if (ItemSupport(i) >= min_support) {
      // NOLINT(cast: kept.size() < num_items_ <= kMaxItemUniverse)
      remap[i] = static_cast<ItemId>(kept.size());
      kept.push_back(i);
    }
  }
  std::vector<std::vector<ItemId>> new_rows(num_rows());
  for (RowId r = 0; r < num_rows(); ++r) {
    for (ItemId item : rows_[r]) {
      if (remap[item] != kInvalidId) new_rows[r].push_back(remap[item]);
    }
  }
  if (kept_items != nullptr) *kept_items = kept;
  // NOLINT(cast: kept.size() <= num_items_, a uint32)
  return DiscreteDataset(static_cast<uint32_t>(kept.size()),
                         std::move(new_rows), labels_);
}

DiscreteDataset DiscreteDataset::SelectRows(const std::vector<RowId>& rows) const {
  std::vector<std::vector<ItemId>> new_rows;
  std::vector<ClassLabel> new_labels;
  new_rows.reserve(rows.size());
  new_labels.reserve(rows.size());
  for (RowId r : rows) {
    TOPKRGS_CHECK(r < num_rows(), "SelectRows: row id out of range");
    new_rows.push_back(rows_[r]);
    new_labels.push_back(labels_[r]);
  }
  return DiscreteDataset(num_items_, std::move(new_rows), std::move(new_labels));
}

Status DiscreteDataset::WriteItemData(const std::string& path) const {
  std::vector<std::string> lines;
  lines.reserve(num_rows());
  for (RowId r = 0; r < num_rows(); ++r) {
    std::string line = std::to_string(int{labels_[r]});
    line += '\t';
    bool first = true;
    for (ItemId item : rows_[r]) {
      if (!first) line += ' ';
      line += std::to_string(item);
      first = false;
    }
    lines.push_back(std::move(line));
  }
  return WriteLines(path, lines);
}

StatusOr<DiscreteDataset> DiscreteDataset::ParseItemData(
    const std::vector<std::string>& lines, uint32_t num_items) {
  if (num_items > kMaxItemUniverse) {
    return Status::InvalidArgument("declared item universe implausibly large");
  }
  std::vector<std::vector<ItemId>> rows;
  std::vector<ClassLabel> labels;
  uint32_t max_item = 0;
  for (const std::string& line : lines) {
    if (line.empty()) continue;
    const auto parts = SplitString(line, '\t');
    if (parts.size() != 2) {
      return Status::InvalidArgument("expected 'label<TAB>items': " + line);
    }
    auto label = ParseUint(parts[0]);
    if (!label.ok()) return label.status();
    if (label.value() >= kMaxClasses) {
      return Status::InvalidArgument("class label out of range: " +
                                     std::string(parts[0]));
    }
    std::vector<ItemId> items;
    for (std::string_view field : SplitString(parts[1], ' ')) {
      if (field.empty()) continue;
      auto item = ParseUint(field);
      if (!item.ok()) return item.status();
      // Bound the universe before the id is ever used: the per-item row
      // index allocates one bitset per universe slot, so admitting a huge
      // id here means allocating gigabytes for a one-line file.
      const uint64_t bound = num_items != 0 ? num_items : kMaxItemUniverse;
      if (item.value() >= bound) {
        return Status::InvalidArgument(
            num_items != 0 ? "item id exceeds the declared universe"
                           : "item id exceeds the supported universe");
      }
      // NOLINT(cast: < bound <= kMaxItemUniverse rejected above)
      const ItemId id = static_cast<ItemId>(item.value());
      max_item = std::max(max_item, id);
      items.push_back(id);
    }
    rows.push_back(std::move(items));
    // NOLINT(cast: < kMaxClasses = 256 rejected above, fits ClassLabel)
    labels.push_back(static_cast<ClassLabel>(label.value()));
  }
  if (rows.empty()) return Status::InvalidArgument("empty item dataset");
  const uint32_t universe = num_items != 0 ? num_items : max_item + 1;
  return DiscreteDataset(universe, std::move(rows), std::move(labels));
}

StatusOr<DiscreteDataset> DiscreteDataset::ReadItemData(const std::string& path,
                                                        uint32_t num_items) {
  auto lines_or = ReadLines(path);
  if (!lines_or.ok()) return lines_or.status();
  return ParseItemData(lines_or.value(), num_items);
}

ItemId RunningExampleItem(char name) {
  // NOLINT(cast: 'a'..'h' maps to 0..7)
  if (name >= 'a' && name <= 'h') return static_cast<ItemId>(name - 'a');
  if (name == 'o') return 8;
  if (name == 'p') return 9;
  TOPKRGS_CHECK(false, "unknown running-example item");
  return kInvalidId;
}

DiscreteDataset MakeRunningExampleDataset() {
  auto items = [](const char* names) {
    std::vector<ItemId> out;
    for (const char* p = names; *p != '\0'; ++p) {
      out.push_back(RunningExampleItem(*p));
    }
    return out;
  };
  // Figure 1(a): class C encoded as 1, ¬C as 0.
  std::vector<std::vector<ItemId>> rows = {
      items("abcde"), items("abcop"), items("cdefg"), items("cdefg"),
      items("efgho"),
  };
  std::vector<ClassLabel> labels = {1, 1, 1, 0, 0};
  return DiscreteDataset(10, std::move(rows), std::move(labels));
}

}  // namespace topkrgs
