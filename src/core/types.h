#ifndef TOPKRGS_CORE_TYPES_H_
#define TOPKRGS_CORE_TYPES_H_

#include <cstdint>

namespace topkrgs {

/// Identifies one discretized item: a (gene, expression interval) pair.
using ItemId = uint32_t;

/// Identifies one row (tissue sample) of a dataset.
using RowId = uint32_t;

/// Identifies one gene (column) of a continuous expression matrix.
using GeneId = uint32_t;

/// Class label. The paper's datasets are binary (class C vs ¬C); the code
/// supports any small number of classes but the miners target one
/// consequent class at a time, exactly as in the paper.
using ClassLabel = uint8_t;

inline constexpr uint32_t kInvalidId = UINT32_MAX;

}  // namespace topkrgs

#endif  // TOPKRGS_CORE_TYPES_H_
