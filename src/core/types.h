#ifndef TOPKRGS_CORE_TYPES_H_
#define TOPKRGS_CORE_TYPES_H_

#include <cstdint>

namespace topkrgs {

/// Identifies one discretized item: a (gene, expression interval) pair.
using ItemId = uint32_t;

/// Identifies one row (tissue sample) of a dataset.
using RowId = uint32_t;

/// Identifies one gene (column) of a continuous expression matrix.
using GeneId = uint32_t;

/// Class label. The paper's datasets are binary (class C vs ¬C); the code
/// supports any small number of classes but the miners target one
/// consequent class at a time, exactly as in the paper.
using ClassLabel = uint8_t;

inline constexpr uint32_t kInvalidId = UINT32_MAX;

/// Number of representable class labels (ClassLabel is uint8_t). Loaders
/// must reject any class value from an external file that is >= this bound:
/// a silent narrowing cast would alias label 256 to 0.
inline constexpr uint32_t kMaxClasses = 256;

/// Largest item universe the ingestion layer accepts from untrusted files
/// (ids and declared counts). The paper's datasets stay below ~10^5 items
/// (Table 1 genes times a few intervals); this cap keeps a hostile header
/// or a single huge item id from forcing multi-gigabyte index allocations
/// before any real validation can run.
inline constexpr uint32_t kMaxItemUniverse = 1u << 20;

}  // namespace topkrgs

#endif  // TOPKRGS_CORE_TYPES_H_
