#ifndef TOPKRGS_CORE_STATS_H_
#define TOPKRGS_CORE_STATS_H_

#include <cstdint>
#include <vector>

namespace topkrgs {

/// Shannon entropy (bits) of a class-count histogram. Zero counts contribute
/// nothing; an all-zero histogram has entropy 0.
double Entropy(const std::vector<uint32_t>& counts);

/// Class entropy of a partition: weighted average of the entropies of
/// `partitions`, each a class-count histogram.
double PartitionEntropy(const std::vector<std::vector<uint32_t>>& partitions);

/// Information gain of splitting `total` (class histogram) into `partitions`.
double InformationGain(const std::vector<uint32_t>& total,
                       const std::vector<std::vector<uint32_t>>& partitions);

/// Pearson chi-square statistic of an r x c contingency table
/// (rows = attribute values, columns = classes). Cells with zero expected
/// count contribute nothing.
double ChiSquare(const std::vector<std::vector<uint32_t>>& table);

/// Entropy-based discriminative score of a continuous feature for a binary
/// or multiclass labeling: the best information gain over all binary
/// threshold splits of `values`. Higher is more discriminative. This is the
/// "entropy score" the paper uses to rank genes in FindLB.
double BestSplitInfoGain(const std::vector<double>& values,
                         const std::vector<uint8_t>& labels,
                         uint32_t num_classes);

/// Chi-square score of a continuous feature computed on its best-info-gain
/// binary split (used for the Figure 8 gene ranking).
double BestSplitChiSquare(const std::vector<double>& values,
                          const std::vector<uint8_t>& labels,
                          uint32_t num_classes);

}  // namespace topkrgs

#endif  // TOPKRGS_CORE_STATS_H_
