#include "core/rule.h"

#include <cstdio>

#include "util/check.h"

namespace topkrgs {

namespace {

std::string ItemsetToString(const Bitset& items) {
  std::string out = "{";
  bool first = true;
  items.ForEach([&](size_t i) {
    if (!first) out += ',';
    out += 'i';
    out += std::to_string(i);
    first = false;
  });
  out += '}';
  return out;
}

std::string Describe(const Bitset& antecedent, ClassLabel consequent,
                     uint32_t support, double confidence) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), " -> %d (sup=%u, conf=%.3f)",
                int{consequent}, support, confidence);
  return ItemsetToString(antecedent) + buf;
}

}  // namespace

std::string Rule::ToString() const {
  return Describe(antecedent, consequent, support, confidence());
}

std::string RuleGroup::ToString() const {
  return Describe(antecedent, consequent, support, confidence());
}

int CompareSignificance(uint32_t sup1, uint32_t as1, uint32_t sup2,
                        uint32_t as2) {
  // Confidence comparison sup1/as1 vs sup2/as2; a zero antecedent support
  // denotes a dummy entry with confidence 0.
  const uint64_t lhs = static_cast<uint64_t>(sup1) * as2;
  const uint64_t rhs = static_cast<uint64_t>(sup2) * as1;
  if (as1 == 0 || as2 == 0) {
    // Dummies: confidence 0 and support 0; fall through with conf ranks.
    const double c1 = as1 == 0 ? 0.0 : static_cast<double>(sup1) / as1;
    const double c2 = as2 == 0 ? 0.0 : static_cast<double>(sup2) / as2;
    if (c1 > c2) return 1;
    if (c1 < c2) return -1;
  } else {
    if (lhs > rhs) return 1;
    if (lhs < rhs) return -1;
  }
  if (sup1 > sup2) return 1;
  if (sup1 < sup2) return -1;
  return 0;
}

bool RuleGroup::CheckInvariants(std::string* error) const {
  auto fail = [error](std::string msg) {
    if (error != nullptr) *error = std::move(msg);
    return false;
  };
  if (antecedent_support != row_support.Count()) {
    return fail("antecedent_support (" + std::to_string(antecedent_support) +
                ") != |row_support| (" + std::to_string(row_support.Count()) +
                ")");
  }
  if (support > antecedent_support) {
    return fail("support (" + std::to_string(support) +
                ") > antecedent_support (" +
                std::to_string(antecedent_support) + ")");
  }
  if (support > 0 && row_support.None()) {
    return fail("support counted but row_support is empty");
  }
  const double conf = confidence();
  if (conf < 0.0 || conf > 1.0) {
    return fail("confidence " + std::to_string(conf) + " outside [0, 1]");
  }
  return true;
}

void RuleGroup::ValidateInvariants() const {
#if TOPKRGS_DCHECK_IS_ON()
  std::string error;
  TKRGS_DCHECK(CheckInvariants(&error), error.c_str());
#endif
}

bool MoreSignificant(const RuleGroup& a, const RuleGroup& b) {
  return CompareSignificance(a.support, a.antecedent_support, b.support,
                             b.antecedent_support) > 0;
}

RuleGroup CloseItemset(const DiscreteDataset& data, const Bitset& itemset,
                       ClassLabel consequent) {
  RuleGroup group;
  group.consequent = consequent;
  group.row_support = data.ItemSupportSet(itemset);
  group.antecedent = data.RowSupportSet(group.row_support);
  // NOLINT(cast: Count() and IntersectCount() <= num_rows, a uint32)
  group.antecedent_support = static_cast<uint32_t>(group.row_support.Count());
  const size_t class_sup =
      group.row_support.IntersectCount(data.ClassRowset(consequent));
  // NOLINT(cast: bounded by antecedent_support above)
  group.support = static_cast<uint32_t>(class_sup);
  group.ValidateInvariants();
  return group;
}

}  // namespace topkrgs
