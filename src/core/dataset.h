#ifndef TOPKRGS_CORE_DATASET_H_
#define TOPKRGS_CORE_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/types.h"
#include "util/bitset.h"
#include "util/status.h"

namespace topkrgs {

/// A continuous gene expression matrix: rows are tissue samples, columns are
/// genes, plus a class label per row. This is the raw input the paper's
/// pipeline starts from; discretization turns it into a DiscreteDataset.
class ContinuousDataset {
 public:
  ContinuousDataset() = default;
  /// Creates an empty dataset over `num_genes` genes with generated gene
  /// names ("G0", "G1", ...).
  explicit ContinuousDataset(uint32_t num_genes);

  // NOLINT(cast: the in-memory row space is uint32 by contract — the
  // out-of-core ingestion path (scale/stream_reader) rejects row counts
  // past UINT32_MAX via CheckedIndexU32 before a dataset is ever built)
  uint32_t num_rows() const { return static_cast<uint32_t>(labels_.size()); }
  uint32_t num_genes() const { return num_genes_; }
  uint32_t num_classes() const { return num_classes_; }

  double value(RowId row, GeneId gene) const {
    return values_[static_cast<size_t>(row) * num_genes_ + gene];
  }
  ClassLabel label(RowId row) const { return labels_[row]; }
  const std::string& gene_name(GeneId gene) const { return gene_names_[gene]; }
  const std::vector<std::string>& class_names() const { return class_names_; }

  void set_gene_name(GeneId gene, std::string name) {
    gene_names_[gene] = std::move(name);
  }
  void set_class_names(std::vector<std::string> names) {
    class_names_ = std::move(names);
  }

  /// Appends a row; `values` must have exactly num_genes() entries.
  void AddRow(const std::vector<double>& values, ClassLabel label);

  /// All values of one gene, in row order.
  std::vector<double> GeneColumn(GeneId gene) const;

  /// Number of rows per class label.
  std::vector<uint32_t> ClassCounts() const;

  /// Serializes as TSV: header "label\t<gene names...>", one row per line.
  [[nodiscard]] Status WriteTsv(const std::string& path) const;
  /// Parses the format produced by WriteTsv from in-memory lines — the
  /// ingestion boundary for untrusted matrices. Validates per-row field
  /// counts, labels representable as ClassLabel, finite expression values
  /// (a NaN would void the sort order the discretizer relies on), and at
  /// least one data row.
  static StatusOr<ContinuousDataset> ParseTsv(
      const std::vector<std::string>& lines);
  /// ParseTsv over a file's contents.
  static StatusOr<ContinuousDataset> ReadTsv(const std::string& path);

 private:
  uint32_t num_genes_ = 0;
  uint32_t num_classes_ = 0;
  std::vector<double> values_;  // row-major, num_rows x num_genes
  std::vector<ClassLabel> labels_;
  std::vector<std::string> gene_names_;
  std::vector<std::string> class_names_;
};

/// A discretized dataset: every row is a set of items (gene expression
/// intervals) plus a class label. Precomputes the two mappings the miners
/// live on: per-row item bitsets and per-item row bitsets.
class DiscreteDataset {
 public:
  DiscreteDataset() = default;
  /// `rows[i]` lists the items of row i (need not be sorted); labels are
  /// parallel to rows.
  DiscreteDataset(uint32_t num_items, std::vector<std::vector<ItemId>> rows,
                  std::vector<ClassLabel> labels);

  // NOLINT(cast: the in-memory row space is uint32 by contract — the
  // out-of-core ingestion path (scale/stream_reader) rejects row counts
  // past UINT32_MAX via CheckedIndexU32 before a dataset is ever built)
  uint32_t num_rows() const { return static_cast<uint32_t>(labels_.size()); }
  uint32_t num_items() const { return num_items_; }
  uint32_t num_classes() const { return num_classes_; }

  ClassLabel label(RowId row) const { return labels_[row]; }
  const std::vector<ItemId>& row_items(RowId row) const { return rows_[row]; }
  /// Items of `row` as a bitset over the item universe.
  const Bitset& row_bitset(RowId row) const { return row_bitsets_[row]; }
  /// Rows containing `item` as a bitset over the row universe.
  const Bitset& item_rows(ItemId item) const { return item_rowsets_[item]; }
  /// Number of rows containing `item`.
  uint32_t ItemSupport(ItemId item) const {
    // NOLINT(cast: Count() <= num_rows, a uint32)
    return static_cast<uint32_t>(item_rowsets_[item].Count());
  }

  /// R(I'): the largest set of rows containing every item of `itemset`.
  /// An empty itemset is contained in every row.
  Bitset ItemSupportSet(const Bitset& itemset) const;

  /// I(R'): the largest itemset common to every row of `rowset`.
  /// By convention I(∅) is the full item universe.
  Bitset RowSupportSet(const Bitset& rowset) const;

  /// Number of rows per class label.
  std::vector<uint32_t> ClassCounts() const;

  /// Rows of the given class as a bitset.
  Bitset ClassRowset(ClassLabel cls) const;

  /// New dataset with only items whose support is >= min_support; item ids
  /// are remapped densely. `kept_items`, when non-null, receives the original
  /// item id of each new id.
  DiscreteDataset FilterInfrequentItems(uint32_t min_support,
                                        std::vector<ItemId>* kept_items) const;

  /// New dataset containing the given rows (in the given order).
  DiscreteDataset SelectRows(const std::vector<RowId>& rows) const;

  /// Writes the dataset in transactional form, the usual exchange format of
  /// itemset-mining datasets: one row per line, "label<TAB>item item ...".
  [[nodiscard]] Status WriteItemData(const std::string& path) const;
  /// Parses the format produced by WriteItemData from in-memory lines.
  /// `num_items` fixes the item universe; 0 infers it as max item id + 1.
  /// Validates labels representable as ClassLabel and bounds the (declared
  /// or inferred) universe by kMaxItemUniverse so a single hostile item id
  /// cannot force a multi-gigabyte index allocation.
  static StatusOr<DiscreteDataset> ParseItemData(
      const std::vector<std::string>& lines, uint32_t num_items = 0);
  /// ParseItemData over a file's contents.
  static StatusOr<DiscreteDataset> ReadItemData(const std::string& path,
                                                uint32_t num_items = 0);

 private:
  void BuildIndexes();

  uint32_t num_items_ = 0;
  uint32_t num_classes_ = 0;
  std::vector<std::vector<ItemId>> rows_;
  std::vector<ClassLabel> labels_;
  std::vector<Bitset> row_bitsets_;   // per row: items
  std::vector<Bitset> item_rowsets_;  // per item: rows
};

/// Builds the paper's Figure 1(a) running example (5 rows, items a..p mapped
/// to ids 0..15, class C=1 for r1..r3 and ¬C=0 for r4,r5). Used by unit
/// tests and the quickstart example.
DiscreteDataset MakeRunningExampleDataset();

/// Item ids for the running example's named items ('a' -> 0, ..., 'p' -> 15).
ItemId RunningExampleItem(char name);

}  // namespace topkrgs

#endif  // TOPKRGS_CORE_DATASET_H_
