#include "scale/stream_reader.h"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/io.h"
#include "util/safe_math.h"

namespace topkrgs {

/// Incremental transposed-table builder: rows are appended one at a time
/// and folded straight into per-item postings. Because rows arrive in
/// ascending id order, each posting list is born sorted. Defined at
/// namespace scope (not anonymously) so StreamedTable's friend
/// declaration reaches it; it lives only in this translation unit.
class TransposedBuilder {
 public:
  explicit TransposedBuilder(uint32_t declared_items)
      : declared_items_(declared_items) {
    if (declared_items_ != 0) postings_.resize(declared_items_);
  }

  Status AppendRow(std::vector<ItemId>& items, ClassLabel label) {
    auto row_or = CheckedIndexU32(rows_, "row count");
    if (!row_or.ok()) return row_or.status();
    const uint32_t row = row_or.value();
    // Collapse duplicates within the row, exactly like the dense bitset
    // index construction would.
    std::sort(items.begin(), items.end());
    items.erase(std::unique(items.begin(), items.end()), items.end());
    for (const ItemId item : items) {
      if (item >= postings_.size()) postings_.resize(item + 1);
      postings_[item].push_back(row);
    }
    labels_.push_back(label);
    num_classes_ = std::max<uint32_t>(num_classes_, label + 1u);
    ++rows_;
    return Status::OK();
  }

  StatusOr<StreamedTable> Finish() {
    if (rows_ == 0) return Status::InvalidArgument("empty item dataset");
    StreamedTable table;
    if (declared_items_ != 0) {
      table.num_items_ = declared_items_;
    } else {
      auto items_or = CheckedIndexU32(
          std::max<uint64_t>(postings_.size(), 1), "inferred item universe");
      if (!items_or.ok()) return items_or.status();
      table.num_items_ = items_or.value();
    }
    table.num_classes_ = num_classes_;
    table.labels_ = std::move(labels_);
    table.item_offsets_.reserve(table.num_items_ + 1);
    table.item_offsets_.push_back(0);
    uint64_t nnz = 0;
    for (uint32_t i = 0; i < table.num_items_; ++i) {
      if (i < postings_.size()) nnz += postings_[i].size();
      table.item_offsets_.push_back(nnz);
    }
    table.item_row_ids_.reserve(nnz);
    for (uint32_t i = 0; i < table.num_items_; ++i) {
      if (i >= postings_.size()) continue;
      table.item_row_ids_.insert(table.item_row_ids_.end(),
                                 postings_[i].begin(), postings_[i].end());
      postings_[i].clear();
      postings_[i].shrink_to_fit();
    }
    return table;
  }

 private:
  uint32_t declared_items_;
  uint64_t rows_ = 0;
  uint32_t num_classes_ = 0;
  std::vector<std::vector<uint32_t>> postings_;
  std::vector<ClassLabel> labels_;
};

namespace {

/// One "label<TAB>item item ..." line -> (items, label). Mirrors
/// DiscreteDataset::ParseItemData's validation so the two ingest paths
/// accept exactly the same files.
Status ParseItemLine(std::string_view line, uint32_t declared_items,
                     std::vector<ItemId>* items, ClassLabel* label) {
  const auto parts = SplitString(line, '\t');
  if (parts.size() != 2) {
    return Status::InvalidArgument("expected 'label<TAB>items': " +
                                   std::string(line));
  }
  auto label_or = ParseUint(parts[0]);
  if (!label_or.ok()) return label_or.status();
  if (label_or.value() >= kMaxClasses) {
    return Status::InvalidArgument("class label out of range: " +
                                   std::string(parts[0]));
  }
  items->clear();
  for (std::string_view field : SplitString(parts[1], ' ')) {
    if (field.empty()) continue;
    auto item = ParseUint(field);
    if (!item.ok()) return item.status();
    const uint64_t bound =
        declared_items != 0 ? declared_items : kMaxItemUniverse;
    if (item.value() >= bound) {
      return Status::InvalidArgument(
          declared_items != 0 ? "item id exceeds the declared universe"
                              : "item id exceeds the supported universe");
    }
    // NOLINT(cast: item.value() < bound <= kMaxItemUniverse, checked above)
    items->push_back(static_cast<ItemId>(item.value()));
  }
  // NOLINT(cast: label < kMaxClasses == 256, checked above)
  *label = static_cast<ClassLabel>(label_or.value());
  return Status::OK();
}

struct LineSink {
  TransposedBuilder* builder;
  uint32_t declared_items;
  std::vector<ItemId> items;  // reused scratch

  Status Consume(std::string_view line) {
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (line.empty()) return Status::OK();
    ClassLabel label = 0;
    Status parse = ParseItemLine(line, declared_items, &items, &label);
    if (!parse.ok()) return parse;
    return builder->AppendRow(items, label);
  }
};

}  // namespace

StatusOr<StreamedTable> StreamReader::ReadItemData(const std::string& path,
                                                   const Options& options) {
  if (options.num_items > kMaxItemUniverse) {
    return Status::InvalidArgument("declared item universe implausibly large");
  }
  if (options.chunk_bytes == 0) {
    return Status::InvalidArgument("chunk_bytes must be > 0");
  }
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::IOError("cannot open " + path);
  }
  TransposedBuilder builder(options.num_items);
  LineSink sink{&builder, options.num_items, {}};
  std::vector<char> chunk(options.chunk_bytes);
  std::string carry;  // unterminated tail of the previous chunk
  Status status = Status::OK();
  for (;;) {
    const size_t got = std::fread(chunk.data(), 1, chunk.size(), file);
    if (got == 0) break;
    size_t begin = 0;
    for (size_t i = 0; i < got; ++i) {
      if (chunk[i] != '\n') continue;
      std::string_view line(chunk.data() + begin, i - begin);
      if (!carry.empty()) {
        carry.append(line);
        status = sink.Consume(carry);
        carry.clear();
      } else {
        status = sink.Consume(line);
      }
      if (!status.ok()) break;
      begin = i + 1;
    }
    if (!status.ok()) break;
    carry.append(chunk.data() + begin, got - begin);
  }
  const bool read_error = status.ok() && std::ferror(file) != 0;
  std::fclose(file);
  if (!status.ok()) return status;
  if (read_error) return Status::IOError("read failed: " + path);
  if (!carry.empty()) {
    status = sink.Consume(carry);  // final line without trailing newline
    if (!status.ok()) return status;
  }
  return builder.Finish();
}

StatusOr<StreamedTable> StreamReader::ParseItemData(std::string_view text,
                                                    const Options& options) {
  if (options.num_items > kMaxItemUniverse) {
    return Status::InvalidArgument("declared item universe implausibly large");
  }
  TransposedBuilder builder(options.num_items);
  LineSink sink{&builder, options.num_items, {}};
  size_t begin = 0;
  while (begin <= text.size()) {
    const size_t end = text.find('\n', begin);
    const size_t stop = end == std::string_view::npos ? text.size() : end;
    Status status = sink.Consume(text.substr(begin, stop - begin));
    if (!status.ok()) return status;
    if (end == std::string_view::npos) break;
    begin = end + 1;
  }
  return builder.Finish();
}

DiscreteDataset MaterializeDataset(const TransposedView& view) {
  std::vector<std::vector<ItemId>> rows(view.num_rows);
  for (uint32_t item = 0; item < view.num_items; ++item) {
    const uint32_t* ids = view.rows_of(item);
    const size_t count = view.rows_count(item);
    for (size_t i = 0; i < count; ++i) {
      rows[ids[i]].push_back(item);
    }
  }
  std::vector<ClassLabel> labels(view.labels, view.labels + view.num_rows);
  return DiscreteDataset(view.num_items, std::move(rows), std::move(labels));
}

}  // namespace topkrgs
