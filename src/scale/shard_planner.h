#ifndef TOPKRGS_SCALE_SHARD_PLANNER_H_
#define TOPKRGS_SCALE_SHARD_PLANNER_H_

#include <cstdint>
#include <vector>

#include "core/types.h"
#include "scale/stream_reader.h"
#include "util/bitset.h"
#include "util/status.h"

namespace topkrgs {

/// Inputs to shard planning. `min_support` is absolute, counted over
/// consequent-class rows (MinSupportFromFrac converts the paper's
/// fractional form).
struct ShardPlanOptions {
  uint32_t k = 1;
  uint32_t min_support = 1;
  /// Peak-RSS target for the whole sharded mining run. The planner sizes
  /// each shard's OWNED range so the per-shard marginal allocations
  /// (prefix-guard postings + per-range result lists) stay within a
  /// fraction of it, and rejects the run up front (InvalidArgument) when
  /// even the irreducible working set — the CSR table plus shard 0's
  /// suffix dataset, which is always the full dataset — cannot fit.
  /// 0 = unlimited.
  uint64_t memory_budget_bytes = 0;
  /// Explicit shard count; 0 = derive from the budget (1 when unlimited).
  uint32_t shard_count = 0;
};

/// One shard: the half-open range of GLOBAL canonical positive positions
/// whose rule groups it owns. The shard mines the dataset suffix starting
/// at begin_pos (all later positives plus every negative row), with
/// first-level subtree tasks restricted to LOCAL positions below
/// `first_level_limit` and a containment guard against rows before
/// begin_pos. See DESIGN.md §14 for why this makes each closed group the
/// property of exactly one shard.
struct ShardRange {
  uint32_t begin_pos = 0;
  uint32_t end_pos = 0;
  /// Local-position bound passed to ShardHooks::first_level_limit.
  /// Normally end_pos - begin_pos; UINT32_MAX (no limit: every first-level
  /// subtree, negative-rooted ones included) for the shard owning the
  /// earliest root-absorbed row, which is always the last planned shard.
  uint32_t first_level_limit = 0;
};

/// The complete sharding decision: the global canonical row order (the
/// paper's ORD, recomputed from the transposed view without materializing
/// the dataset), the global frequent-item set, and the owned ranges.
struct ShardPlan {
  ClassLabel consequent = 0;
  uint32_t k = 1;
  /// max(1, options.min_support) — the miner's initial minsup convention.
  uint32_t initial_min_support = 1;
  std::vector<RowId> order;           // global position -> original row id
  std::vector<uint32_t> position_of;  // original row id -> global position
  uint32_t positives = 0;             // np: consequent-class row count
  Bitset frequent;                    // global frequent items
  /// Earliest canonical position of a row containing EVERY frequent item
  /// ("root-absorbed": such rows are in every closed rowset), UINT32_MAX
  /// if none. Shards whose range begins after it are never planned — the
  /// prefix guard would suppress their entire search.
  uint32_t absorbed_min_pos = 0xffffffffu;
  std::vector<ShardRange> shards;  // empty when there is nothing to mine
  uint64_t estimated_peak_bytes = 0;
};

/// Plans sharded mining of `view` for `consequent`. Fails with
/// InvalidArgument on an out-of-range consequent or a memory budget too
/// small for the irreducible working set.
StatusOr<ShardPlan> PlanShards(const TransposedView& view,
                               ClassLabel consequent,
                               const ShardPlanOptions& options);

}  // namespace topkrgs

#endif  // TOPKRGS_SCALE_SHARD_PLANNER_H_
