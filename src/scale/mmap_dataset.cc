#include "scale/mmap_dataset.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>

#include "core/types.h"
#include "util/safe_math.h"

namespace topkrgs {

namespace {

constexpr char kMagic[8] = {'T', 'K', 'D', 'S', '0', '0', '0', '1'};
constexpr uint32_t kEndianTag = 0x0A0B0C0Du;
constexpr uint64_t kHeaderBytes = 32;

uint64_t PadTo8(uint64_t n) { return (n + 7) & ~uint64_t{7}; }

/// Section layout for a given shape; all offsets are from byte 0.
struct Layout {
  uint64_t labels_begin;
  uint64_t offsets_begin;
  uint64_t row_ids_begin;
  uint64_t total_bytes;
};

/// Overflow-checked: a hostile header may declare any (num_items, nnz)
/// combination, and a wrapped total_bytes that happens to equal the real
/// file size would validate garbage sections against each other. PadTo8
/// cannot overflow its callers here — every padded quantity is first
/// bounded by a checked product below.
StatusOr<Layout> LayoutFor(uint32_t num_items, uint32_t num_rows,
                           uint64_t nnz) {
  Layout l;
  l.labels_begin = kHeaderBytes;
  l.offsets_begin = l.labels_begin + PadTo8(num_rows);
  auto offsets_bytes = CheckedMul<uint64_t>(
      uint64_t{num_items} + 1, sizeof(uint64_t), "tkds item_offsets bytes");
  if (!offsets_bytes.ok()) return offsets_bytes.status();
  auto row_ids_begin = CheckedAdd<uint64_t>(
      l.offsets_begin, offsets_bytes.value(), "tkds row_ids offset");
  if (!row_ids_begin.ok()) return row_ids_begin.status();
  l.row_ids_begin = row_ids_begin.value();
  auto ids_bytes =
      CheckedMul<uint64_t>(nnz, sizeof(uint32_t), "tkds item_row_ids bytes");
  if (!ids_bytes.ok()) return ids_bytes.status();
  auto ids_padded = CheckedAdd<uint64_t>(ids_bytes.value(), 7,
                                         "tkds item_row_ids padding");
  if (!ids_padded.ok()) return ids_padded.status();
  auto total = CheckedAdd<uint64_t>(
      l.row_ids_begin, ids_padded.value() & ~uint64_t{7}, "tkds total bytes");
  if (!total.ok()) return total.status();
  l.total_bytes = total.value();
  return l;
}

Status WriteAll(std::FILE* file, const void* data, size_t bytes,
                const std::string& path) {
  if (bytes != 0 && std::fwrite(data, 1, bytes, file) != bytes) {
    return Status::IOError("short write: " + path);
  }
  return Status::OK();
}

}  // namespace

Status WriteTkds(const StreamedTable& table, const std::string& path) {
  // Reject a table whose layout arithmetic would wrap before touching the
  // filesystem (the same checked math Open applies to untrusted headers).
  auto layout_or = LayoutFor(table.num_items(), table.num_rows(), table.nnz());
  if (!layout_or.ok()) return layout_or.status();
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return Status::IOError("cannot create " + path);
  }
  const uint32_t num_items = table.num_items();
  const uint32_t num_rows = table.num_rows();
  const uint32_t num_classes = table.num_classes();
  const uint64_t nnz = table.nnz();

  unsigned char header[kHeaderBytes] = {};
  std::memcpy(header, kMagic, sizeof(kMagic));
  std::memcpy(header + 8, &kEndianTag, 4);
  std::memcpy(header + 12, &num_items, 4);
  std::memcpy(header + 16, &num_rows, 4);
  std::memcpy(header + 20, &num_classes, 4);
  std::memcpy(header + 24, &nnz, 8);

  const TransposedView view = table.View();
  const uint64_t pad = 0;
  Status status = WriteAll(file, header, sizeof(header), path);
  if (status.ok()) {
    status = WriteAll(file, view.labels, num_rows, path);
  }
  if (status.ok()) {
    status = WriteAll(file, &pad, PadTo8(num_rows) - num_rows, path);
  }
  if (status.ok()) {
    status = WriteAll(file, view.item_offsets,
                      (static_cast<size_t>(num_items) + 1) * sizeof(uint64_t),
                      path);
  }
  if (status.ok()) {
    status = WriteAll(file, view.item_row_ids, nnz * sizeof(uint32_t), path);
  }
  if (status.ok()) {
    const size_t ids_bytes = nnz * sizeof(uint32_t);
    status = WriteAll(file, &pad, PadTo8(ids_bytes) - ids_bytes, path);
  }
  if (std::fclose(file) != 0 && status.ok()) {
    status = Status::IOError("close failed: " + path);
  }
  return status;
}

StatusOr<MmapDataset> MmapDataset::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IOError("cannot open " + path);
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IOError("cannot stat " + path);
  }
  if (st.st_size < 0) {  // fstat contract: never negative for a real file
    ::close(fd);
    return Status::IOError("negative file size from fstat: " + path);
  }
  const size_t file_bytes = static_cast<size_t>(st.st_size);
  if (file_bytes < kHeaderBytes) {
    ::close(fd);
    return Status::InvalidArgument(path + ": truncated tkds header");
  }
  void* mapping = ::mmap(nullptr, file_bytes, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps the file alive
  if (mapping == MAP_FAILED) {
    return Status::IOError("mmap failed: " + path);
  }
  MmapDataset dataset;
  dataset.mapping_ = mapping;
  dataset.mapped_bytes_ = file_bytes;

  const unsigned char* base = static_cast<const unsigned char*>(mapping);
  auto invalid = [&](const std::string& why) -> Status {
    return Status::InvalidArgument(path + ": " + why);
  };
  if (std::memcmp(base, kMagic, sizeof(kMagic)) != 0) {
    return invalid("not a tkds file (bad magic)");
  }
  uint32_t tag, num_items, num_rows, num_classes;
  uint64_t nnz;
  std::memcpy(&tag, base + 8, 4);
  std::memcpy(&num_items, base + 12, 4);
  std::memcpy(&num_rows, base + 16, 4);
  std::memcpy(&num_classes, base + 20, 4);
  std::memcpy(&nnz, base + 24, 8);
  if (tag != kEndianTag) {
    return invalid("byte order mismatch (file written on a foreign-endian "
                   "machine)");
  }
  if (num_items == 0 || num_items > kMaxItemUniverse) {
    return invalid("item universe out of range");
  }
  if (num_rows == 0) return invalid("empty dataset");
  if (num_classes == 0 || num_classes > kMaxClasses) {
    return invalid("class count out of range");
  }
  if (nnz > static_cast<uint64_t>(num_items) * num_rows) {
    return invalid("nnz exceeds rows × items");
  }
  auto layout_or = LayoutFor(num_items, num_rows, nnz);
  if (!layout_or.ok()) {
    return invalid("declared shape overflows the layout arithmetic (" +
                   layout_or.status().message() + ")");
  }
  const Layout& layout = layout_or.value();
  if (file_bytes != layout.total_bytes) {
    return invalid("file size does not match the declared shape");
  }

  const ClassLabel* labels =
      reinterpret_cast<const ClassLabel*>(base + layout.labels_begin);
  const uint64_t* offsets =
      reinterpret_cast<const uint64_t*>(base + layout.offsets_begin);
  const uint32_t* row_ids =
      reinterpret_cast<const uint32_t*>(base + layout.row_ids_begin);

  for (uint32_t r = 0; r < num_rows; ++r) {
    if (labels[r] >= num_classes) return invalid("label out of range");
  }
  if (offsets[0] != 0) return invalid("item_offsets[0] != 0");
  for (uint32_t i = 0; i < num_items; ++i) {
    if (offsets[i + 1] < offsets[i]) {
      return invalid("item_offsets not monotone");
    }
  }
  if (offsets[num_items] != nnz) {
    return invalid("item_offsets[num_items] != nnz");
  }
  for (uint32_t i = 0; i < num_items; ++i) {
    for (uint64_t j = offsets[i]; j < offsets[i + 1]; ++j) {
      if (row_ids[j] >= num_rows) return invalid("row id out of range");
      if (j > offsets[i] && row_ids[j] <= row_ids[j - 1]) {
        return invalid("row ids not strictly ascending within an item");
      }
    }
  }

  dataset.view_.num_items = num_items;
  dataset.view_.num_rows = num_rows;
  dataset.view_.num_classes = num_classes;
  dataset.view_.labels = labels;
  dataset.view_.item_offsets = offsets;
  dataset.view_.item_row_ids = row_ids;
  return dataset;
}

MmapDataset::MmapDataset(MmapDataset&& other) noexcept
    : mapping_(std::exchange(other.mapping_, nullptr)),
      mapped_bytes_(std::exchange(other.mapped_bytes_, 0)),
      view_(std::exchange(other.view_, TransposedView{})) {}

MmapDataset& MmapDataset::operator=(MmapDataset&& other) noexcept {
  if (this != &other) {
    if (mapping_ != nullptr) ::munmap(mapping_, mapped_bytes_);
    mapping_ = std::exchange(other.mapping_, nullptr);
    mapped_bytes_ = std::exchange(other.mapped_bytes_, 0);
    view_ = std::exchange(other.view_, TransposedView{});
  }
  return *this;
}

MmapDataset::~MmapDataset() {
  if (mapping_ != nullptr) ::munmap(mapping_, mapped_bytes_);
}

}  // namespace topkrgs
