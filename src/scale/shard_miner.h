#ifndef TOPKRGS_SCALE_SHARD_MINER_H_
#define TOPKRGS_SCALE_SHARD_MINER_H_

#include <cstdint>
#include <vector>

#include "core/dataset.h"
#include "mine/miner_common.h"
#include "mine/topk_miner.h"
#include "scale/shard_planner.h"
#include "scale/stream_reader.h"
#include "util/timer.h"

namespace topkrgs {

/// Per-shard mining knobs; the paper-configuration pruning toggles are
/// deliberately not exposed — sharding's bit-identity contract is proven
/// for the default configuration.
struct ShardMineOptions {
  /// Worker threads INSIDE each shard (the PR 7 work-stealing pool);
  /// shards themselves run sequentially so only one dense suffix dataset
  /// is ever resident.
  uint32_t threads = 1;
  TopkMinerOptions::Backend backend = TopkMinerOptions::Backend::kPrefixTree;
  /// Per-shard wall-clock budget; an expiry marks stats.timed_out and the
  /// merged output is then incomplete (never silently wrong).
  Deadline deadline;
};

/// One shard's mining output, remapped to GLOBAL coordinates: per_pos is
/// indexed by global canonical positive position (lists are empty below
/// the shard's begin_pos), every group's row_support is over original
/// global row ids, and list order — significance descending, canonical
/// discovery order within ties — is preserved for the merge's replay.
struct ShardResult {
  uint32_t shard_index = 0;
  std::vector<std::vector<RuleGroupPtr>> per_pos;
  MinerStats stats;
};

/// Materializes the dense suffix dataset shard `shard_index` mines: rows
/// at global canonical positions [begin_pos, num_rows), in that order
/// (every negative row is part of every suffix — canonical order is
/// class-dominant, so negatives all sort after the positives).
DiscreteDataset BuildSuffixDataset(const TransposedView& view,
                                   const ShardPlan& plan,
                                   uint32_t shard_index);

/// Mines one shard: builds the suffix dataset and the prefix containment
/// guard, runs MineTopkRGS under the plan's ShardHooks, and remaps the
/// result to global coordinates.
ShardResult MineShard(const TransposedView& view, const ShardPlan& plan,
                      uint32_t shard_index, const ShardMineOptions& options);

}  // namespace topkrgs

#endif  // TOPKRGS_SCALE_SHARD_MINER_H_
