#include "scale/shard_planner.h"

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

#include "util/safe_math.h"

namespace topkrgs {

namespace {

uint64_t BitsetBytes(uint64_t universe) { return ((universe + 63) / 64) * 8; }

/// Peak-memory model for the sharded run (documented in DESIGN.md §14).
/// Shard 0's suffix is the whole dataset, so the dense per-shard indexes
/// are maximal there; the prefix-guard postings are maximal at the LAST
/// shard (one bitset column per item over up to `np` prefix positions).
/// The CSR table stays resident throughout.
///
/// Checked throughout: every factor except `k` is bounded by the view's
/// validated shape (items <= kMaxItemUniverse, nnz <= rows × items), but
/// `k` is raw CLI input, and a wrapped estimate that lands back under the
/// budget would wave through a run planned to blow it. An overflowing
/// model means the plan is unrepresentable — surface that as the error.
StatusOr<uint64_t> EstimatePeakBytes(const TransposedView& view, uint32_t np,
                                     uint32_t k) {
  const uint64_t rows = view.num_rows;
  const uint64_t items = view.num_items;
  const char* what = "sharded peak-memory estimate";
  const uint64_t csr = view.nnz() * sizeof(uint32_t) +
                       (items + 1) * sizeof(uint64_t) + rows;
  const uint64_t dataset = rows * BitsetBytes(items)   // row bitsets
                           + items * BitsetBytes(rows)  // item rowsets
                           + view.nnz() * sizeof(ItemId) + rows * 32;
  const uint64_t guard = items * BitsetBytes(np);
  // Result lists: np rows × k shared handles plus a generous allowance for
  // distinct groups (each an item bitset + a row bitset).
  auto np_k = CheckedMul<uint64_t>(np, k, what);
  if (!np_k.ok()) return np_k.status();
  auto handles = CheckedMul<uint64_t>(np_k.value(), 16, what);
  if (!handles.ok()) return handles.status();
  auto results = CheckedAdd<uint64_t>(
      handles.value(), 4096 * (BitsetBytes(items) + BitsetBytes(rows) + 64),
      what);
  if (!results.ok()) return results.status();
  auto total = CheckedAdd<uint64_t>(csr + dataset + guard, results.value(),
                                    what);
  if (!total.ok()) return total.status();
  return total.value();
}

}  // namespace

StatusOr<ShardPlan> PlanShards(const TransposedView& view,
                               ClassLabel consequent,
                               const ShardPlanOptions& options) {
  if (consequent >= view.num_classes) {
    return Status::InvalidArgument(
        "consequent class " + std::to_string(consequent) +
        " out of range (dataset declares " + std::to_string(view.num_classes) +
        " classes)");
  }
  if (options.k < 1) {
    return Status::InvalidArgument("shard planning: k must be >= 1");
  }

  ShardPlan plan;
  plan.consequent = consequent;
  plan.k = options.k;
  plan.initial_min_support = std::max<uint32_t>(1, options.min_support);

  const uint32_t num_rows = view.num_rows;
  const uint32_t num_items = view.num_items;

  // Global frequent items — FrequentItems(data, consequent, minsup)
  // recomputed from postings: an item is frequent iff its support counted
  // over consequent-class rows reaches the initial minsup.
  plan.frequent = Bitset(num_items);
  for (uint32_t item = 0; item < num_items; ++item) {
    const uint32_t* ids = view.rows_of(item);
    const size_t count = view.rows_count(item);
    uint32_t class_support = 0;
    for (size_t i = 0; i < count; ++i) {
      if (view.labels[ids[i]] == consequent) ++class_support;
    }
    if (class_support >= plan.initial_min_support) plan.frequent.Set(item);
  }
  // NOLINT(cast: Count() <= num_items, a uint32)
  const auto frequent_count = static_cast<uint32_t>(plan.frequent.Count());

  // Global canonical order — ClassDominantOrder (the paper's ORD)
  // recomputed from postings: weight = |row ∩ frequent|, consequent-class
  // rows first, ascending weight within each class, stable within ties.
  std::vector<uint32_t> weight(num_rows, 0);
  plan.frequent.ForEach([&](size_t bit) {
    // NOLINT(cast: ForEach yields bit positions < num_items, a uint32)
    const uint32_t item = static_cast<uint32_t>(bit);
    const uint32_t* ids = view.rows_of(item);
    const size_t count = view.rows_count(item);
    for (size_t i = 0; i < count; ++i) ++weight[ids[i]];
  });
  plan.order.resize(num_rows);
  std::iota(plan.order.begin(), plan.order.end(), 0u);
  std::stable_sort(plan.order.begin(), plan.order.end(),
                   [&](RowId a, RowId b) {
                     const bool a_pos = view.labels[a] == consequent;
                     const bool b_pos = view.labels[b] == consequent;
                     if (a_pos != b_pos) return a_pos;
                     return weight[a] < weight[b];
                   });
  plan.position_of.assign(num_rows, 0);
  for (uint32_t pos = 0; pos < num_rows; ++pos) {
    plan.position_of[plan.order[pos]] = pos;
  }
  plan.positives = 0;
  for (uint32_t r = 0; r < num_rows; ++r) {
    if (view.labels[r] == consequent) ++plan.positives;
  }

  // Earliest root-absorbed position: the first canonical row containing
  // every frequent item. Rows at or before it pin min(R) for EVERY closed
  // group, which is what the ownership truncation below keys on.
  plan.absorbed_min_pos = UINT32_MAX;
  if (frequent_count > 0) {
    for (uint32_t pos = 0; pos < num_rows; ++pos) {
      if (weight[plan.order[pos]] == frequent_count) {
        plan.absorbed_min_pos = pos;
        break;
      }
    }
  }

  auto peak_or = EstimatePeakBytes(view, plan.positives, options.k);
  if (!peak_or.ok()) return peak_or.status();
  const uint64_t peak = peak_or.value();
  plan.estimated_peak_bytes = peak;
  if (options.memory_budget_bytes != 0 && peak > options.memory_budget_bytes) {
    return Status::InvalidArgument(
        "memory budget " + std::to_string(options.memory_budget_bytes) +
        " bytes is below the irreducible sharded working set (~" +
        std::to_string(peak) +
        " bytes: CSR table + shard 0's dense suffix indexes + guard + "
        "result lists); raise --memory-budget");
  }

  const uint32_t np = plan.positives;
  if (np == 0 || frequent_count == 0) {
    return plan;  // nothing to mine; shards stays empty
  }

  // Shard count: explicit, or sized so each shard's marginal allocations
  // (guard postings grow by ~items/8 bytes per owned position, result
  // lists by ~k dense group handles) stay within a quarter of the budget.
  uint32_t count = options.shard_count;
  if (count == 0) {
    if (options.memory_budget_bytes == 0) {
      count = 1;
    } else {
      const uint64_t per_pos = num_items / 8 + 1 +
                               static_cast<uint64_t>(options.k) *
                                   (BitsetBytes(num_items) + BitsetBytes(num_rows));
      const uint64_t rows_per_shard =
          std::max<uint64_t>(1, options.memory_budget_bytes / 4 / per_pos);
      // NOLINT(cast: min() result <= np, a uint32)
      count = static_cast<uint32_t>(
          std::min<uint64_t>(np, (np + rows_per_shard - 1) / rows_per_shard));
    }
  }
  count = std::min(count, np);
  count = std::max(count, 1u);

  // Even split of the positive positions; the first `extra` shards take
  // one more. Shards beginning after the earliest root-absorbed row are
  // never planned (their prefix guard suppresses everything), and the
  // shard that CONTAINS it owns every group rooted at or past it — its
  // first-level fan-out is unlimited.
  const uint32_t base = np / count;
  const uint32_t extra = np % count;
  uint32_t begin = 0;
  for (uint32_t p = 0; p < count && begin < np; ++p) {
    ShardRange range;
    range.begin_pos = begin;
    range.end_pos = begin + base + (p < extra ? 1 : 0);
    if (plan.absorbed_min_pos < range.begin_pos) break;  // inert from here on
    if (plan.absorbed_min_pos < range.end_pos) {
      // This shard owns every group rooted at or past the earliest
      // absorbed row (that row is in EVERY closed rowset, pinning min(R)
      // inside this range): unlimited fan-out, and every later shard
      // would be suppressed wholesale by its prefix guard.
      range.end_pos = np;
      range.first_level_limit = UINT32_MAX;
      plan.shards.push_back(range);
      break;
    }
    range.first_level_limit = range.end_pos - range.begin_pos;
    plan.shards.push_back(range);
    begin = range.end_pos;
  }
  return plan;
}

}  // namespace topkrgs
