#include "scale/shard_miner.h"

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/rule.h"
#include "core/types.h"
#include "util/bitset.h"
#include "util/check.h"
#include "util/rowset.h"

namespace topkrgs {

DiscreteDataset BuildSuffixDataset(const TransposedView& view,
                                   const ShardPlan& plan,
                                   uint32_t shard_index) {
  const uint32_t begin = plan.shards[shard_index].begin_pos;
  const uint32_t suffix_rows = view.num_rows - begin;
  std::vector<std::vector<ItemId>> rows(suffix_rows);
  for (uint32_t item = 0; item < view.num_items; ++item) {
    const uint32_t* ids = view.rows_of(item);
    const size_t count = view.rows_count(item);
    for (size_t i = 0; i < count; ++i) {
      const uint32_t pos = plan.position_of[ids[i]];
      if (pos >= begin) rows[pos - begin].push_back(item);
    }
  }
  std::vector<ClassLabel> labels(suffix_rows);
  for (uint32_t l = 0; l < suffix_rows; ++l) {
    labels[l] = view.labels[plan.order[begin + l]];
  }
  return DiscreteDataset(view.num_items, std::move(rows), std::move(labels));
}

namespace {

/// The out-of-shard half of the backward check: per-item postings over the
/// PREFIX positions [0, begin_pos), as bitsets, so "is this itemset
/// contained in some earlier row" becomes an intersection chain with an
/// empty-set early exit. Read-only after construction — workers query it
/// concurrently through thread-local scratch.
class PrefixGuard {
 public:
  PrefixGuard(const TransposedView& view, const ShardPlan& plan,
              uint32_t begin_pos)
      : prefix_rows_(begin_pos) {
    item_prefix_.reserve(view.num_items);
    for (uint32_t item = 0; item < view.num_items; ++item) {
      item_prefix_.emplace_back(begin_pos);
    }
    for (uint32_t item = 0; item < view.num_items; ++item) {
      const uint32_t* ids = view.rows_of(item);
      const size_t count = view.rows_count(item);
      for (size_t i = 0; i < count; ++i) {
        const uint32_t pos = plan.position_of[ids[i]];
        if (pos < begin_pos) item_prefix_[item].Set(pos);
      }
    }
  }

  /// True iff every item of `items` occurs together in at least one prefix
  /// row: ∩ prefix-postings(i) ≠ ∅.
  bool Contains(const RowSet& items) const {
    if (prefix_rows_ == 0) return false;
    if (items.Count() == 0) return true;  // ∅ ⊆ any row
    // Thread-local accumulator: the assignment reuses its buffer across
    // calls, and each worker owns its copy, keeping the hook safe under
    // the work-stealing pool.
    static thread_local Bitset acc;
    bool first = true;
    bool empty = false;
    items.ForEach([&](size_t item) {
      if (empty) return;
      const Bitset& postings = item_prefix_[item];
      if (first) {
        acc = postings;
        first = false;
      } else {
        acc.IntersectWith(postings);
      }
      if (acc.None()) empty = true;
    });
    return !empty;
  }

 private:
  uint32_t prefix_rows_;
  std::vector<Bitset> item_prefix_;
};

}  // namespace

ShardResult MineShard(const TransposedView& view, const ShardPlan& plan,
                      uint32_t shard_index, const ShardMineOptions& options) {
  const ShardRange& range = plan.shards[shard_index];
  const uint32_t begin = range.begin_pos;
  const uint32_t np = plan.positives;

  const DiscreteDataset suffix = BuildSuffixDataset(view, plan, shard_index);
  const PrefixGuard guard(view, plan, begin);

  ShardHooks hooks;
  hooks.frequent_items = &plan.frequent;
  hooks.first_level_limit = range.first_level_limit;
  if (begin > 0) {
    hooks.contained_outside = [&guard](const RowSet& items) {
      return guard.Contains(items);
    };
  }

  TopkMinerOptions mine_options;
  mine_options.k = plan.k;
  mine_options.min_support = plan.initial_min_support;
  mine_options.backend = options.backend;
  mine_options.row_order = TopkMinerOptions::RowOrder::kNatural;
  mine_options.threads = options.threads;
  mine_options.deadline = options.deadline;
  mine_options.shard_hooks = &hooks;

  const TopkResult local =
      MineTopkRGS(suffix, plan.consequent, mine_options);

  ShardResult result;
  result.shard_index = shard_index;
  result.stats = local.stats;
  result.per_pos.assign(np, {});

  // Remap to global coordinates. Each distinct group is translated once
  // and shared across the rows it covers, mirroring the miner's own
  // handle sharing.
  // NOLINT(determinism: pointer-keyed identity map probed via operator[]
  // only, never iterated — emission follows the per-row list order, so
  // neither bucket order nor addresses can leak into the output)
  std::unordered_map<const RuleGroup*, RuleGroupPtr> translated;
  for (uint32_t local_row = 0; local_row < suffix.num_rows(); ++local_row) {
    const auto& list = local.per_row[local_row];
    if (list.empty()) continue;
    const uint32_t global_pos = begin + local_row;
    TKRGS_DCHECK_LT(global_pos, np,
                    "a shard list on a non-consequent (negative) row");
    auto& out = result.per_pos[global_pos];
    out.reserve(list.size());
    for (const RuleGroupPtr& group : list) {
      RuleGroupPtr& slot = translated[group.get()];
      if (slot == nullptr) {
        auto remapped = std::make_shared<RuleGroup>();
        remapped->antecedent = group->antecedent;
        remapped->consequent = group->consequent;
        remapped->support = group->support;
        remapped->antecedent_support = group->antecedent_support;
        Bitset rows(view.num_rows);
        group->row_support.ForEach([&](size_t l) {
          rows.Set(plan.order[begin + l]);
        });
        remapped->row_support = std::move(rows);
        slot = std::move(remapped);
      }
      out.push_back(slot);
    }
  }
  return result;
}

}  // namespace topkrgs
