#ifndef TOPKRGS_SCALE_TOPK_MERGE_H_
#define TOPKRGS_SCALE_TOPK_MERGE_H_

#include <cstdint>
#include <vector>

#include "core/types.h"
#include "mine/miner_common.h"
#include "mine/topk_miner.h"
#include "scale/shard_miner.h"
#include "scale/shard_planner.h"
#include "scale/stream_reader.h"
#include "util/status.h"

namespace topkrgs {

/// The sharded engine's final output — same shape and same contents, bit
/// for bit, as single-shot MineTopkRGS on the materialized dataset
/// (TopkResult::per_row indexed by original row id, plus the recomputed
/// effective minsup). `stats` aggregates the per-shard search counters;
/// timed_out means some shard hit its deadline and the lists are
/// incomplete.
struct MergedTopk {
  std::vector<std::vector<RuleGroupPtr>> per_row;
  uint32_t effective_min_support = 0;
  MinerStats stats;
};

/// Merges per-shard results into the global per-row top-k by replaying
/// every candidate in the single-shot search's canonical insertion order:
/// single-item seeds (reconstructed from the transposed view in ascending
/// item order), the root group (rows containing every frequent item),
/// then each shard's lists in shard order — shard p's stream is exactly
/// the canonical emission order of the first-level subtrees p owns.
/// Cross-shard duplicates (seeds, the root group) collapse through the
/// same identity-triple dedup the miner's replay uses, and surviving
/// provisional seeds are closed against the view. See DESIGN.md §14 for
/// the correctness argument.
MergedTopk MergeShardResults(const TransposedView& view, const ShardPlan& plan,
                             const std::vector<ShardResult>& shards);

/// Order- and content-sensitive digest of a top-k result: covers every
/// row's list order, each group's counts, antecedent and row support, and
/// the effective minsup. Stable across processes (no pointer or seed
/// dependence), so equal digests across shard counts — and against the
/// single-shot oracle — certify bit-identical output.
uint64_t TopkDigest(const std::vector<std::vector<RuleGroupPtr>>& per_row,
                    uint32_t effective_min_support);

/// End-to-end sharded mining: plan, mine each shard sequentially (one
/// dense suffix dataset resident at a time), merge. On success `plan_out`
/// (when non-null) receives the executed plan for reporting. Fails only
/// on planning errors (bad consequent, infeasible memory budget).
StatusOr<MergedTopk> MineShardedTopkRGS(const TransposedView& view,
                                        ClassLabel consequent,
                                        const ShardPlanOptions& plan_options,
                                        const ShardMineOptions& mine_options,
                                        ShardPlan* plan_out = nullptr);

}  // namespace topkrgs

#endif  // TOPKRGS_SCALE_TOPK_MERGE_H_
