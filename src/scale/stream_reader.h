#ifndef TOPKRGS_SCALE_STREAM_READER_H_
#define TOPKRGS_SCALE_STREAM_READER_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/dataset.h"
#include "core/types.h"
#include "util/safe_math.h"
#include "util/status.h"

namespace topkrgs {

/// A read-only, column(item)-major view of a discrete dataset: the
/// transposed table in CSR form. rows_of(i) is the ascending list of
/// global row ids containing item i. This is the one interchange shape of
/// src/scale/ — StreamedTable owns one in memory, MmapDataset maps one
/// from disk, and the shard planner/miner/merge all consume it without
/// caring which.
/// TKRGS_GSL_POINTER: a TransposedView never owns the arrays it points
/// into — clang's lifetime analysis treats it like a pointer, so a view
/// kept past its backing StreamedTable/MmapDataset is a -Wdangling error.
struct TKRGS_GSL_POINTER TransposedView {
  uint32_t num_items = 0;
  uint32_t num_rows = 0;
  uint32_t num_classes = 0;
  const ClassLabel* labels = nullptr;        // num_rows entries
  const uint64_t* item_offsets = nullptr;    // num_items + 1 entries
  const uint32_t* item_row_ids = nullptr;    // item_offsets[num_items] entries

  uint64_t nnz() const { return item_offsets[num_items]; }
  const uint32_t* rows_of(uint32_t item) const {
    return item_row_ids + item_offsets[item];
  }
  size_t rows_count(uint32_t item) const {
    return static_cast<size_t>(item_offsets[item + 1] - item_offsets[item]);
  }
};

/// The transposed table built incrementally by StreamReader. Owns its CSR
/// arrays; memory is O(nnz), never O(rows × items) — the row-major matrix
/// is never materialized.
class TKRGS_GSL_OWNER StreamedTable {
 public:
  uint32_t num_items() const { return num_items_; }
  uint32_t num_rows() const {
    // Bounded by construction: TransposedBuilder::AppendRow refuses to
    // grow past UINT32_MAX rows (CheckedIndexU32 on the row count).
    return static_cast<uint32_t>(labels_.size());  // NOLINT(cast: see above)
  }
  uint32_t num_classes() const { return num_classes_; }
  uint64_t nnz() const { return item_offsets_.empty() ? 0 : item_offsets_.back(); }
  const std::vector<ClassLabel>& labels() const TKRGS_LIFETIME_BOUND {
    return labels_;
  }

  TransposedView View() const TKRGS_LIFETIME_BOUND {
    TransposedView view;
    view.num_items = num_items_;
    view.num_rows = num_rows();
    view.num_classes = num_classes_;
    view.labels = labels_.data();
    view.item_offsets = item_offsets_.data();
    view.item_row_ids = item_row_ids_.data();
    return view;
  }

 private:
  friend class StreamReader;
  friend class TransposedBuilder;

  uint32_t num_items_ = 0;
  uint32_t num_classes_ = 0;
  std::vector<ClassLabel> labels_;
  std::vector<uint64_t> item_offsets_;
  std::vector<uint32_t> item_row_ids_;
};

/// Chunked reader for the item-data format ("label<TAB>item item ..."
/// lines, the WriteItemData/ParseItemData contract): the file is consumed
/// in fixed-size buffers and each complete row is folded into per-item
/// postings immediately, so peak memory is the transposed table plus one
/// chunk — independent of how large the row-major text is. Validation
/// matches ParseItemData: labels < kMaxClasses, item ids bounded by the
/// declared universe (or kMaxItemUniverse when inferring), overflow-checked
/// integer parses, non-empty dataset. Duplicate items within a row are
/// collapsed, exactly as the dense index construction does.
class StreamReader {
 public:
  struct Options {
    /// Item universe; 0 = infer as max seen id + 1 (like ParseItemData).
    uint32_t num_items = 0;
    /// Read granularity. The default keeps syscall counts low without
    /// holding more than ~1 MiB of raw text at a time.
    size_t chunk_bytes = 1u << 20;
  };

  static StatusOr<StreamedTable> ReadItemData(const std::string& path,
                                              const Options& options);
  static StatusOr<StreamedTable> ReadItemData(const std::string& path) {
    return ReadItemData(path, Options());
  }

  /// The same parse over an in-memory buffer (tests, fuzzing).
  static StatusOr<StreamedTable> ParseItemData(std::string_view text,
                                               const Options& options);
  static StatusOr<StreamedTable> ParseItemData(std::string_view text) {
    return ParseItemData(text, Options());
  }
};

/// Materializes a DiscreteDataset (dense row bitsets + item rowsets) from
/// a transposed view, preserving original row order. This is the bridge to
/// the in-memory miner — callers opt into the O(rows × items / 8) bitset
/// cost explicitly; the shard miner does this per suffix, never for data
/// it does not intend to mine.
DiscreteDataset MaterializeDataset(const TransposedView& view);

}  // namespace topkrgs

#endif  // TOPKRGS_SCALE_STREAM_READER_H_
