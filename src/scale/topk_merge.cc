#include "scale/topk_merge.h"

#include <algorithm>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/rule.h"
#include "util/bitset.h"
#include "util/timer.h"

namespace topkrgs {

namespace {

/// Mutable wrapper during the merge; mirrors the miner's GroupHandle.
/// `provisional` marks a reconstructed single-item seed whose closed
/// antecedent has not arrived yet (upgraded in place on dedup, or closed
/// against the view at finalize).
struct MergeHandle {
  RuleGroup group;
  bool provisional = false;
};
using MergeHandlePtr = std::shared_ptr<MergeHandle>;

class Merger {
 public:
  Merger(const TransposedView& view, const ShardPlan& plan)
      : view_(view), plan_(plan), lists_(plan.positives) {}

  /// Byte-for-byte the miner's ReplayInsert (topk_miner.cc): dedup by the
  /// identity triple with provisional upgrade, k-th-tie rejection (the
  /// earlier — canonically first — arrival keeps the slot), sorted insert.
  void Insert(uint32_t pos, const MergeHandlePtr& handle) {
    auto& list = lists_[pos];
    const RuleGroup& g = handle->group;

    for (auto& existing : list) {
      RuleGroup& e = existing->group;
      if (e.support == g.support &&
          e.antecedent_support == g.antecedent_support &&
          e.row_support == g.row_support) {
        if (existing->provisional && !handle->provisional) {
          e.antecedent = g.antecedent;
          existing->provisional = false;
        }
        return;
      }
    }

    if (list.size() >= plan_.k) {
      const RuleGroup& kth = list.back()->group;
      if (CompareSignificance(g.support, g.antecedent_support, kth.support,
                              kth.antecedent_support) <= 0) {
        return;
      }
    }
    auto it = std::find_if(
        list.begin(), list.end(), [&](const MergeHandlePtr& e) {
          return CompareSignificance(g.support, g.antecedent_support,
                                     e->group.support,
                                     e->group.antecedent_support) > 0;
        });
    list.insert(it, handle);
    if (list.size() > plan_.k) list.pop_back();
  }

  /// Pass 1 — single-item seeds, ascending item order, exactly
  /// SeedSingleItems over the global table.
  void SeedItems() {
    plan_.frequent.ForEach([&](size_t item_index) {
      // NOLINT(cast: ForEach yields bit positions < num_items, a uint32)
      const uint32_t item = static_cast<uint32_t>(item_index);
      const uint32_t* ids = view_.rows_of(item);
      const size_t count = view_.rows_count(item);
      auto handle = std::make_shared<MergeHandle>();
      handle->provisional = true;
      handle->group.antecedent = Bitset(view_.num_items);
      handle->group.antecedent.Set(item);
      handle->group.consequent = plan_.consequent;
      Bitset rows(view_.num_rows);
      uint32_t support = 0;
      for (size_t i = 0; i < count; ++i) {
        rows.Set(ids[i]);
        if (view_.labels[ids[i]] == plan_.consequent) ++support;
      }
      handle->group.row_support = std::move(rows);
      // NOLINT(cast: rows_count <= num_rows, a uint32)
      handle->group.antecedent_support = static_cast<uint32_t>(count);
      handle->group.support = support;
      for (size_t i = 0; i < count; ++i) {
        if (view_.labels[ids[i]] != plan_.consequent) continue;
        Insert(plan_.position_of[ids[i]], handle);
      }
    });
  }

  /// Pass 2 — the root group: rows containing EVERY frequent item. Its
  /// canonical slot is right after the seeds (origin 1 in the miner).
  /// Inserting it even when the single-shot search would have suppressed
  /// it is sound: suppression at the root can only be justified by seed
  /// entries, which are already in the lists here and reject it the same
  /// way.
  void RootGroup() {
    // NOLINT(cast: Count() <= num_items, a uint32)
    const auto frequent_count = static_cast<uint32_t>(plan_.frequent.Count());
    if (frequent_count == 0) return;
    std::vector<uint32_t> weight(view_.num_rows, 0);
    plan_.frequent.ForEach([&](size_t bit) {
      // NOLINT(cast: ForEach yields bit positions < num_items, a uint32)
      const uint32_t item = static_cast<uint32_t>(bit);
      const uint32_t* ids = view_.rows_of(item);
      const size_t count = view_.rows_count(item);
      for (size_t i = 0; i < count; ++i) ++weight[ids[i]];
    });
    Bitset absorbed(view_.num_rows);
    uint32_t asup = 0;
    uint32_t sup = 0;
    for (uint32_t r = 0; r < view_.num_rows; ++r) {
      if (weight[r] != frequent_count) continue;
      absorbed.Set(r);
      ++asup;
      if (view_.labels[r] == plan_.consequent) ++sup;
    }
    if (asup == 0 || sup < plan_.initial_min_support) return;
    auto handle = std::make_shared<MergeHandle>();
    handle->group.antecedent = plan_.frequent;
    handle->group.consequent = plan_.consequent;
    handle->group.support = sup;
    handle->group.antecedent_support = asup;
    handle->group.row_support = absorbed;
    absorbed.ForEach([&](size_t r) {
      if (view_.labels[r] != plan_.consequent) return;
      Insert(plan_.position_of[r], handle);
    });
  }

  /// Pass 3 — shard emission streams, shard order then position order
  /// then list order: exactly the canonical order of the first-level
  /// subtrees each shard owns. Handles are shared across the rows a group
  /// covers, like the miner's.
  void ShardStreams(const std::vector<ShardResult>& shards) {
    for (const ShardResult& shard : shards) {
      // NOLINT(determinism: pointer-keyed identity map probed via
      // operator[] only, never iterated — inserts walk the shard's
      // per-position lists in order, so neither bucket order nor
      // addresses can leak into the merge)
      std::unordered_map<const RuleGroup*, MergeHandlePtr> wrapped;
      for (uint32_t pos = 0; pos < shard.per_pos.size(); ++pos) {
        for (const RuleGroupPtr& group : shard.per_pos[pos]) {
          MergeHandlePtr& slot = wrapped[group.get()];
          if (slot == nullptr) {
            slot = std::make_shared<MergeHandle>();
            slot->group = *group;
          }
          Insert(pos, slot);
        }
      }
    }
  }

  /// Closes surviving provisional seeds (their closed antecedent was
  /// suppressed in every shard as a strictly-dominated never-winner) the
  /// same way Finalize does, but against the transposed view: the closure
  /// of R within the frequent universe is every frequent item whose
  /// posting list contains R.
  void CloseProvisional(MergeHandle* handle) {
    const std::vector<uint32_t> rows = handle->group.row_support.ToVector();
    Bitset closure(view_.num_items);
    plan_.frequent.ForEach([&](size_t item_index) {
      // NOLINT(cast: ForEach yields bit positions < num_items, a uint32)
      const uint32_t item = static_cast<uint32_t>(item_index);
      const size_t count = view_.rows_count(item);
      if (count < rows.size()) return;
      const uint32_t* ids = view_.rows_of(item);
      if (std::includes(ids, ids + count, rows.begin(), rows.end())) {
        closure.Set(item);
      }
    });
    handle->group.antecedent = std::move(closure);
    handle->provisional = false;
  }

  MergedTopk Finish() {
    MergedTopk merged;
    merged.per_row.assign(view_.num_rows, {});
    for (uint32_t pos = 0; pos < plan_.positives; ++pos) {
      auto& out = merged.per_row[plan_.order[pos]];
      out.reserve(lists_[pos].size());
      for (const MergeHandlePtr& handle : lists_[pos]) {
        if (handle->provisional) CloseProvisional(handle.get());
        out.push_back(RuleGroupPtr(handle, &handle->group));
      }
    }
    // FinalEffectiveMinsup's rule: the dynamic raise recomputed from the
    // final lists (all positive lists full of 100%-confidence groups).
    merged.effective_min_support = plan_.initial_min_support;
    if (plan_.positives > 0) {
      uint32_t lowest = UINT32_MAX;
      for (uint32_t pos = 0; pos < plan_.positives; ++pos) {
        const auto& list = lists_[pos];
        if (list.size() < plan_.k) return merged;
        const RuleGroup& kth = list.back()->group;
        if (kth.support == 0 || kth.support != kth.antecedent_support) {
          return merged;
        }
        lowest = std::min(lowest, kth.support);
      }
      if (lowest != UINT32_MAX) {
        merged.effective_min_support =
            std::max(merged.effective_min_support, lowest + 1);
      }
    }
    return merged;
  }

 private:
  const TransposedView& view_;
  const ShardPlan& plan_;
  std::vector<std::vector<MergeHandlePtr>> lists_;  // by canonical position
};

}  // namespace

MergedTopk MergeShardResults(const TransposedView& view, const ShardPlan& plan,
                             const std::vector<ShardResult>& shards) {
  Merger merger(view, plan);
  if (plan.frequent.Count() > 0 && plan.positives > 0) {
    merger.SeedItems();
    merger.RootGroup();
    merger.ShardStreams(shards);
  }
  return merger.Finish();
}

uint64_t TopkDigest(const std::vector<std::vector<RuleGroupPtr>>& per_row,
                    uint32_t effective_min_support) {
  auto mix = [](uint64_t h, uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    return h;
  };
  uint64_t digest = mix(0x7468652d746b6473ull, effective_min_support);
  digest = mix(digest, per_row.size());
  for (size_t row = 0; row < per_row.size(); ++row) {
    const auto& list = per_row[row];
    if (list.empty()) continue;
    digest = mix(digest, row);
    digest = mix(digest, list.size());
    for (const RuleGroupPtr& group : list) {
      digest = mix(digest, group->support);
      digest = mix(digest, group->antecedent_support);
      digest = mix(digest, group->consequent);
      digest = mix(digest, group->antecedent.Hash());
      digest = mix(digest, group->row_support.Hash());
    }
  }
  return digest;
}

StatusOr<MergedTopk> MineShardedTopkRGS(const TransposedView& view,
                                        ClassLabel consequent,
                                        const ShardPlanOptions& plan_options,
                                        const ShardMineOptions& mine_options,
                                        ShardPlan* plan_out) {
  Stopwatch timer;
  auto plan_or = PlanShards(view, consequent, plan_options);
  if (!plan_or.ok()) return plan_or.status();
  const ShardPlan& plan = plan_or.value();

  MinerStats aggregate;
  std::vector<ShardResult> results;
  results.reserve(plan.shards.size());
  for (uint32_t p = 0; p < plan.shards.size(); ++p) {
    // Each shard's dense suffix dataset and guard live only inside this
    // call — one shard's working set is resident at a time.
    ShardResult result = MineShard(view, plan, p, mine_options);
    aggregate.nodes_visited += result.stats.nodes_visited;
    aggregate.groups_emitted += result.stats.groups_emitted;
    aggregate.pruned_backward += result.stats.pruned_backward;
    aggregate.pruned_bounds += result.stats.pruned_bounds;
    aggregate.tasks_executed += result.stats.tasks_executed;
    aggregate.tasks_spawned += result.stats.tasks_spawned;
    aggregate.tasks_stolen += result.stats.tasks_stolen;
    aggregate.timed_out = aggregate.timed_out || result.stats.timed_out;
    results.push_back(std::move(result));
  }

  MergedTopk merged = MergeShardResults(view, plan, results);
  merged.stats = aggregate;
  merged.stats.seconds = timer.ElapsedSeconds();
  if (plan_out != nullptr) *plan_out = plan;
  return merged;
}

}  // namespace topkrgs
