#ifndef TOPKRGS_SCALE_MMAP_DATASET_H_
#define TOPKRGS_SCALE_MMAP_DATASET_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "scale/stream_reader.h"
#include "util/safe_math.h"
#include "util/status.h"

namespace topkrgs {

/// The "tkds" memory-mapped dataset format: the transposed table of
/// stream_reader.h laid out verbatim on disk so a reader pays zero parse
/// cost and the page cache is the only copy in memory. Little-endian,
/// 8-byte-aligned sections (DESIGN.md §14 carries the byte-level spec):
///
///   [0]  magic            8 bytes   "TKDS0001"
///   [8]  endian tag       u32       0x0A0B0C0D (rejects foreign byte order)
///   [12] num_items        u32
///   [16] num_rows         u32
///   [20] num_classes      u32
///   [24] nnz              u64
///   [32] labels           num_rows × u8, padded to a multiple of 8
///   [..] item_offsets     (num_items + 1) × u64
///   [..] item_row_ids     nnz × u32
///
/// Every structural invariant is validated once at Open (magic/tag, exact
/// file size, monotone offsets bracketed by [0, nnz], ascending in-range
/// row ids per item, labels < num_classes <= kMaxClasses), so downstream
/// consumers can trust the view without per-access checks.

/// Serializes a streamed table to `path` in tkds format.
[[nodiscard]] Status WriteTkds(const StreamedTable& table,
                               const std::string& path);

/// A tkds file mapped read-only into the address space. Movable, not
/// copyable; the TransposedView it hands out is valid for the lifetime of
/// this object.
class TKRGS_GSL_OWNER MmapDataset {
 public:
  static StatusOr<MmapDataset> Open(const std::string& path);

  /// An empty (unmapped) dataset; View() on it is all-null. Public because
  /// StatusOr<MmapDataset> value-initializes its payload.
  MmapDataset() = default;

  MmapDataset(MmapDataset&& other) noexcept;
  MmapDataset& operator=(MmapDataset&& other) noexcept;
  MmapDataset(const MmapDataset&) = delete;
  MmapDataset& operator=(const MmapDataset&) = delete;
  ~MmapDataset();

  TransposedView View() const TKRGS_LIFETIME_BOUND { return view_; }
  size_t mapped_bytes() const { return mapped_bytes_; }

 private:
  void* mapping_ = nullptr;
  size_t mapped_bytes_ = 0;
  TransposedView view_;
};

}  // namespace topkrgs

#endif  // TOPKRGS_SCALE_MMAP_DATASET_H_
