#ifndef TOPKRGS_ANALYZE_RULE_REPORT_H_
#define TOPKRGS_ANALYZE_RULE_REPORT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/dataset.h"
#include "core/rule.h"
#include "discretize/entropy_discretizer.h"
#include "mine/topk_miner.h"

namespace topkrgs {

/// Statistical summary of one rule group against a dataset — the numbers a
/// biologist reads next to a rule (§6.2's interpretability claims).
struct RuleGroupStats {
  double confidence = 0.0;
  uint32_t support = 0;
  /// Lift: confidence / base rate of the consequent class.
  double lift = 0.0;
  /// Chi-square of the 2x2 antecedent-presence vs class contingency table.
  double chi_square = 0.0;
  /// Fraction of consequent-class rows covered.
  double class_coverage = 0.0;
  size_t antecedent_items = 0;
};

/// Computes RuleGroupStats for `group` against `data`.
RuleGroupStats ComputeRuleGroupStats(const DiscreteDataset& data,
                                     const RuleGroup& group);

/// Coverage analysis of a rule-group collection: how many consequent-class
/// rows are covered by at least one / exactly one group, and the
/// average number of groups covering a row (the redundancy the paper's
/// top-k formulation bounds).
struct CoverageStats {
  uint32_t class_rows = 0;
  uint32_t covered = 0;
  uint32_t covered_once = 0;
  double mean_groups_per_row = 0.0;

  double coverage() const {
    return class_rows == 0 ? 0.0 : static_cast<double>(covered) / class_rows;
  }
};

CoverageStats ComputeCoverage(const DiscreteDataset& data, ClassLabel consequent,
                              const std::vector<RuleGroupPtr>& groups);

/// Per-gene usage across a rule collection: how often each gene's items
/// appear (Figure 8's occurrence counts).
std::vector<std::pair<GeneId, uint32_t>> GeneUsage(
    const Discretization& discretization, const std::vector<Rule>& rules);

/// Renders a human-readable report of a top-k mining result: per-group
/// stats, coverage, and the most used genes. `raw` supplies gene names;
/// `max_groups` caps the per-group section.
std::string RenderTopkReport(const DiscreteDataset& data,
                             const ContinuousDataset& raw,
                             const Discretization& discretization,
                             ClassLabel consequent, const TopkResult& result,
                             size_t max_groups = 10);

}  // namespace topkrgs

#endif  // TOPKRGS_ANALYZE_RULE_REPORT_H_
