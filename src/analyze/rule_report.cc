#include "analyze/rule_report.h"

#include <algorithm>
#include <cstdio>
#include <map>

#include "core/stats.h"

namespace topkrgs {

RuleGroupStats ComputeRuleGroupStats(const DiscreteDataset& data,
                                     const RuleGroup& group) {
  RuleGroupStats stats;
  stats.confidence = group.confidence();
  stats.support = group.support;
  stats.antecedent_items = group.antecedent.Count();

  const auto class_counts = data.ClassCounts();
  const uint32_t class_rows = class_counts[group.consequent];
  const uint32_t total_rows = data.num_rows();
  if (class_rows > 0 && total_rows > 0) {
    const double base_rate =
        static_cast<double>(class_rows) / static_cast<double>(total_rows);
    stats.lift = base_rate > 0 ? stats.confidence / base_rate : 0.0;
    stats.class_coverage =
        static_cast<double>(group.support) / static_cast<double>(class_rows);
  }

  // 2x2 contingency: antecedent presence x consequent class.
  const uint32_t with_and_class = group.support;
  const uint32_t with_not_class = group.antecedent_support - group.support;
  const uint32_t without_and_class = class_rows - with_and_class;
  const uint32_t without_not_class =
      (total_rows - class_rows) - with_not_class;
  stats.chi_square = ChiSquare({{with_and_class, with_not_class},
                                {without_and_class, without_not_class}});
  return stats;
}

CoverageStats ComputeCoverage(const DiscreteDataset& data, ClassLabel consequent,
                              const std::vector<RuleGroupPtr>& groups) {
  CoverageStats stats;
  uint64_t total_coverings = 0;
  for (RowId r = 0; r < data.num_rows(); ++r) {
    if (data.label(r) != consequent) continue;
    ++stats.class_rows;
    uint32_t covering = 0;
    for (const RuleGroupPtr& group : groups) {
      covering += group->row_support.Test(r);
    }
    stats.covered += covering > 0;
    stats.covered_once += covering == 1;
    total_coverings += covering;
  }
  stats.mean_groups_per_row =
      stats.class_rows == 0
          ? 0.0
          : static_cast<double>(total_coverings) / stats.class_rows;
  return stats;
}

std::vector<std::pair<GeneId, uint32_t>> GeneUsage(
    const Discretization& discretization, const std::vector<Rule>& rules) {
  std::map<GeneId, uint32_t> usage;
  for (const Rule& rule : rules) {
    rule.antecedent.ForEach([&](size_t item) {
      ++usage[discretization.item(static_cast<ItemId>(item)).gene];
    });
  }
  std::vector<std::pair<GeneId, uint32_t>> out(usage.begin(), usage.end());
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.second > b.second || (a.second == b.second && a.first < b.first);
  });
  return out;
}

std::string RenderTopkReport(const DiscreteDataset& data,
                             const ContinuousDataset& raw,
                             const Discretization& discretization,
                             ClassLabel consequent, const TopkResult& result,
                             size_t max_groups) {
  std::string out;
  char buf[256];
  const auto groups = result.DistinctGroups();
  std::snprintf(buf, sizeof(buf),
                "Top-k covering rule groups for class %d: %zu distinct "
                "groups (effective minsup %u)\n",
                static_cast<int>(consequent), groups.size(),
                result.effective_min_support);
  out += buf;

  const CoverageStats coverage = ComputeCoverage(data, consequent, groups);
  std::snprintf(buf, sizeof(buf),
                "Coverage: %u/%u class rows covered (%.1f%%), mean %.1f "
                "groups per row\n\n",
                coverage.covered, coverage.class_rows,
                100.0 * coverage.coverage(), coverage.mean_groups_per_row);
  out += buf;

  for (size_t g = 0; g < groups.size() && g < max_groups; ++g) {
    const RuleGroupStats stats = ComputeRuleGroupStats(data, *groups[g]);
    std::snprintf(buf, sizeof(buf),
                  "group %zu: %zu items, sup %u (%.0f%% of class), conf "
                  "%.1f%%, lift %.2f, chi2 %.1f\n",
                  g, stats.antecedent_items, stats.support,
                  100.0 * stats.class_coverage, 100.0 * stats.confidence,
                  stats.lift, stats.chi_square);
    out += buf;
    // First few items in gene/interval form.
    std::string antecedent;
    size_t printed = 0;
    groups[g]->antecedent.ForEach([&](size_t item) {
      if (printed >= 3) return;
      if (!antecedent.empty()) antecedent += " AND ";
      antecedent += discretization.ItemName(raw, static_cast<ItemId>(item));
      ++printed;
    });
    if (groups[g]->antecedent.Count() > 3) antecedent += " AND ...";
    out += "  " + antecedent + "\n";
  }
  return out;
}

}  // namespace topkrgs
