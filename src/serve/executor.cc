#include "serve/executor.h"

#include <algorithm>
#include <atomic>
#include <utility>

namespace topkrgs {

PredictionExecutor::PredictionExecutor(const Options& options,
                                       ServeMetrics* metrics)
    : options_(options),
      num_workers_(std::max<uint32_t>(1, options.workers)),
      metrics_(metrics),
      paused_(options.start_paused) {
  workers_.reserve(num_workers_);
  for (size_t i = 0; i < num_workers_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

PredictionExecutor::~PredictionExecutor() { Shutdown(); }

std::future<StatusOr<PredictResponse>> PredictionExecutor::Submit(
    PredictRequest request) {
  Task task;
  task.request = std::move(request);
  task.submitted = std::chrono::steady_clock::now();
  std::future<StatusOr<PredictResponse>> future = task.promise.get_future();

  bool stopped;
  {
    MutexLock lock(mu_);
    if (!stopping_ && queue_.size() < options_.queue_capacity) {
      queue_.push_back(std::move(task));
      if (metrics_ != nullptr) {
        metrics_->requests_total.fetch_add(1, std::memory_order_relaxed);
        metrics_->queue_depth.fetch_add(1, std::memory_order_relaxed);
      }
      cv_.NotifyOne();
      return future;
    }
    stopped = stopping_;
  }
  // Shed without ever queueing: the caller learns immediately, and a
  // saturated server spends no worker time on the rejected request.
  if (metrics_ != nullptr) {
    metrics_->shed_total.fetch_add(1, std::memory_order_relaxed);
  }
  task.promise.set_value(Status::ResourceExhausted(
      stopped ? "executor stopped" : "request queue full"));
  return future;
}

StatusOr<PredictResponse> PredictionExecutor::Predict(PredictRequest request) {
  return Submit(std::move(request)).get();
}

void PredictionExecutor::Resume() {
  {
    MutexLock lock(mu_);
    paused_ = false;
  }
  cv_.NotifyAll();
}

void PredictionExecutor::Shutdown() {
  std::deque<Task> orphaned;
  {
    MutexLock lock(mu_);
    if (stopping_) return;
    stopping_ = true;
    paused_ = false;
    orphaned.swap(queue_);
  }
  cv_.NotifyAll();
  for (std::thread& t : workers_) t.join();
  workers_.clear();
  for (Task& task : orphaned) {
    if (metrics_ != nullptr) {
      metrics_->queue_depth.fetch_sub(1, std::memory_order_relaxed);
    }
    Finish(&task, Status::ResourceExhausted("executor stopped"));
  }
}

size_t PredictionExecutor::queue_depth() const {
  MutexLock lock(mu_);
  return queue_.size();
}

StatusOr<PredictResponse> PredictionExecutor::Execute(
    const PredictRequest& request) const {
  if (request.model == nullptr) {
    return Status::InvalidArgument("request carries no model");
  }
  PredictResponse response;
  // NOLINT(hotpath: one reservation per request, sized to the batch)
  response.rows.reserve(request.rows.size());
  for (const std::vector<double>& row : request.rows) {
    // Re-check between rows so a large batch cannot blow through its
    // deadline: the client has given up, finishing the tail is waste.
    if (request.deadline.Expired()) {
      return Status::DeadlineExceeded("deadline expired mid-batch");
    }
    // NOLINT(hotpath: dispatches to ServableModel::Predict, itself a
    // TKRGS_HOT root enforced from its own annotation; the same-name
    // queue wrapper the textual resolver can bind here is not called)
    auto row_or = request.model->Predict(row);
    if (!row_or.ok()) return row_or.status();
    // NOLINT(hotpath: lands inside the per-request reservation above)
    response.rows.push_back(std::move(row_or).value());
    if (metrics_ != nullptr) {
      metrics_->rows_total.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return response;
}

void PredictionExecutor::Finish(Task* task, StatusOr<PredictResponse> result) {
  if (metrics_ != nullptr) {
    if (!result.ok()) {
      metrics_->errors_total.fetch_add(1, std::memory_order_relaxed);
      if (result.status().code() == StatusCode::kDeadlineExceeded) {
        metrics_->deadline_exceeded_total.fetch_add(1,
                                                    std::memory_order_relaxed);
      }
    }
    const auto elapsed = std::chrono::steady_clock::now() - task->submitted;
    metrics_->request_latency.Record(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(elapsed)
            .count()));
  }
  task->promise.set_value(std::move(result));
}

void PredictionExecutor::WorkerLoop() {
  for (;;) {
    std::vector<Task> batch;
    {
      MutexLock lock(mu_);
      // Explicit wait loop (not the predicate overload): the analysis can
      // only verify the guarded-field reads when they sit syntactically
      // under the held MutexLock, not inside an unannotated lambda.
      while (!stopping_ && (paused_ || queue_.empty())) {
        cv_.Wait(lock);
      }
      if (stopping_) return;
      // Drain a fair share of the backlog in one critical section
      // (batching): one wakeup then executes the batch lock-free. Taking
      // ceil(depth / workers) instead of everything keeps the other
      // workers fed when the backlog is deep.
      const size_t take = std::max<size_t>(
          1, (queue_.size() + num_workers_ - 1) / num_workers_);
      batch.reserve(take);
      while (!queue_.empty() && batch.size() < take) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      if (metrics_ != nullptr) {
        metrics_->queue_depth.fetch_sub(static_cast<int64_t>(batch.size()),
                                        std::memory_order_relaxed);
      }
      if (!queue_.empty()) cv_.NotifyOne();
    }
    for (Task& task : batch) {
      if (task.request.deadline.Expired()) {
        Finish(&task, Status::DeadlineExceeded("deadline expired in queue"));
        continue;
      }
      Finish(&task, Execute(task.request));
    }
  }
}

}  // namespace topkrgs
