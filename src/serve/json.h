#ifndef TOPKRGS_SERVE_JSON_H_
#define TOPKRGS_SERVE_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/safe_math.h"
#include "util/status.h"

namespace topkrgs {

/// Minimal dependency-free JSON tree for the serving endpoints: enough of
/// RFC 8259 to parse prediction requests and emit responses. Like the
/// model parsers in classify/model_io.h, Parse is an ingestion boundary
/// over untrusted bytes (a network payload, a fuzzer input): it returns a
/// fully validated tree or an InvalidArgument Status — never an abort.
/// Guardrails: nesting depth capped (stack exhaustion), input size capped
/// by the HTTP layer, numbers must be finite doubles, strings must be
/// valid escape sequences (\uXXXX with surrogate pairs supported).
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  using Member = std::pair<std::string, JsonValue>;

  JsonValue() : kind_(Kind::kNull) {}
  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool b) {
    JsonValue v;
    v.kind_ = Kind::kBool;
    v.bool_ = b;
    return v;
  }
  static JsonValue Number(double d) {
    JsonValue v;
    v.kind_ = Kind::kNumber;
    v.number_ = d;
    return v;
  }
  static JsonValue String(std::string s) {
    JsonValue v;
    v.kind_ = Kind::kString;
    v.string_ = std::move(s);
    return v;
  }
  static JsonValue Array() {
    JsonValue v;
    v.kind_ = Kind::kArray;
    return v;
  }
  static JsonValue Object() {
    JsonValue v;
    v.kind_ = Kind::kObject;
    return v;
  }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool boolean() const { return bool_; }
  double number() const { return number_; }
  // The accessors below return references (or, for Find, a pointer) into
  // this value's own storage: binding one to a JsonValue temporary —
  // e.g. `const auto& s = Parse(text).value().str();` — dangles.
  const std::string& str() const TKRGS_LIFETIME_BOUND { return string_; }
  const std::vector<JsonValue>& array() const TKRGS_LIFETIME_BOUND {
    return array_;
  }
  const std::vector<Member>& members() const TKRGS_LIFETIME_BOUND {
    return members_;
  }

  void Append(JsonValue v) { array_.push_back(std::move(v)); }
  void Set(std::string key, JsonValue v) {
    members_.emplace_back(std::move(key), std::move(v));
  }

  /// First member with `key`, or nullptr. Linear scan: serving payloads
  /// have a handful of keys.
  const JsonValue* Find(std::string_view key) const TKRGS_LIFETIME_BOUND {
    for (const Member& m : members_) {
      if (m.first == key) return &m.second;
    }
    return nullptr;
  }

  /// Parses one JSON document (trailing whitespace allowed, trailing
  /// garbage rejected).
  static StatusOr<JsonValue> Parse(std::string_view text);

  /// Compact serialization (no insignificant whitespace). Numbers render
  /// via shortest-round-trip so a parse-dump cycle preserves doubles.
  std::string Dump() const;

 private:
  void DumpTo(std::string* out) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<Member> members_;
};

/// Escapes a string for embedding in a JSON document (adds the quotes).
std::string JsonQuote(std::string_view s);

}  // namespace topkrgs

#endif  // TOPKRGS_SERVE_JSON_H_
