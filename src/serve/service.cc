#include "serve/service.h"

#include <atomic>
#include <cmath>

#include "serve/json.h"

namespace topkrgs {

namespace {

/// Request-shape caps, enforced before any allocation proportional to the
/// declared size: a hostile payload must not reserve gigabytes.
constexpr size_t kMaxRowsPerRequest = 4096;
constexpr size_t kMaxValuesPerRow = 1u << 20;

HttpResponse JsonError(int http_code, const Status& status) {
  HttpResponse response;
  response.status_code = http_code;
  JsonValue body = JsonValue::Object();
  body.Set("error", JsonValue::String(status.ToString()));
  response.body = body.Dump();
  return response;
}

HttpResponse StatusError(const Status& status) {
  return JsonError(HttpCodeForStatus(status), status);
}

}  // namespace

int HttpCodeForStatus(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk:
      return 200;
    case StatusCode::kInvalidArgument:
      return 400;
    case StatusCode::kNotFound:
      return 404;
    case StatusCode::kFailedPrecondition:
      return 409;
    case StatusCode::kResourceExhausted:
      return 429;
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kTimeout:
      return 504;
    case StatusCode::kIOError:
    case StatusCode::kOutOfRange:
      return 500;
  }
  return 500;
}

StatusOr<ParsedPredictRequest> ParsePredictRequest(std::string_view body) {
  auto doc_or = JsonValue::Parse(body);
  if (!doc_or.ok()) return doc_or.status();
  const JsonValue& doc = doc_or.value();
  if (!doc.is_object()) {
    return Status::InvalidArgument("request must be a JSON object");
  }

  ParsedPredictRequest out;
  bool have_rows = false;
  for (const auto& [key, value] : doc.members()) {
    if (key == "model") {
      if (!value.is_string() || value.str().empty()) {
        return Status::InvalidArgument("'model' must be a non-empty string");
      }
      out.model = value.str();
    } else if (key == "version") {
      if (!value.is_string()) {
        return Status::InvalidArgument("'version' must be a string");
      }
      out.version = value.str();
    } else if (key == "deadline_ms") {
      if (!value.is_number() || !(value.number() > 0)) {
        return Status::InvalidArgument("'deadline_ms' must be a number > 0");
      }
      out.deadline_ms = value.number();
    } else if (key == "rows") {
      if (!value.is_array() || value.array().empty()) {
        return Status::InvalidArgument("'rows' must be a non-empty array");
      }
      if (value.array().size() > kMaxRowsPerRequest) {
        return Status::InvalidArgument(
            "too many rows (max " + std::to_string(kMaxRowsPerRequest) + ")");
      }
      have_rows = true;
      out.rows.reserve(value.array().size());
      for (const JsonValue& row : value.array()) {
        if (!row.is_array() || row.array().empty()) {
          return Status::InvalidArgument(
              "each row must be a non-empty array of numbers");
        }
        if (row.array().size() > kMaxValuesPerRow) {
          return Status::InvalidArgument("row too long (max " +
                                         std::to_string(kMaxValuesPerRow) +
                                         ")");
        }
        std::vector<double> values;
        values.reserve(row.array().size());
        for (const JsonValue& v : row.array()) {
          // The JSON parser already rejects non-finite literals; this
          // guards the contract for any future parser change.
          if (!v.is_number() || !std::isfinite(v.number())) {
            return Status::InvalidArgument("row values must be finite numbers");
          }
          values.push_back(v.number());
        }
        out.rows.push_back(std::move(values));
      }
    } else {
      return Status::InvalidArgument("unknown request key '" + key + "'");
    }
  }
  if (!have_rows) return Status::InvalidArgument("missing 'rows'");
  return out;
}

std::string RowResultToJson(const ServableModel::RowResult& row) {
  JsonValue out = JsonValue::Object();
  out.Set("label", JsonValue::Number(static_cast<double>(row.label)));
  out.Set("classifier",
          JsonValue::Number(static_cast<double>(row.classifier_index)));
  out.Set("used_default", JsonValue::Bool(row.used_default));
  JsonValue scores = JsonValue::Array();
  for (double s : row.scores) scores.Append(JsonValue::Number(s));
  out.Set("scores", std::move(scores));
  JsonValue rules = JsonValue::Array();
  for (const std::string& r : row.matched_rules) {
    rules.Append(JsonValue::String(r));
  }
  out.Set("matched_rules", std::move(rules));
  return out.Dump();
}

PredictionService::PredictionService(const Options& options)
    : registry_(&metrics_),
      executor_({options.workers, options.queue_capacity, false}, &metrics_),
      default_deadline_ms_(options.default_deadline_ms) {}

Status PredictionService::Start(uint16_t port) {
  if (http_ != nullptr) {
    return Status::FailedPrecondition("service already started");
  }
  http_ = std::make_unique<HttpServer>(
      [this](const HttpRequest& request) { return HandleHttp(request); });
  const Status status = http_->Start(port);
  if (!status.ok()) http_.reset();
  return status;
}

void PredictionService::Stop() {
  if (http_ != nullptr) {
    http_->Stop();
    http_.reset();
  }
}

StatusOr<PredictResponse> PredictionService::Predict(
    const ParsedPredictRequest& parsed) {
  auto model_or = registry_.Get(parsed.model, parsed.version);
  if (!model_or.ok()) return model_or.status();
  PredictRequest request;
  request.model = std::move(model_or).value();
  request.rows = parsed.rows;
  const double deadline_ms =
      parsed.deadline_ms > 0 ? parsed.deadline_ms : default_deadline_ms_;
  if (deadline_ms > 0) request.deadline = Deadline(deadline_ms / 1e3);
  return executor_.Predict(std::move(request));
}

HttpResponse PredictionService::HandleHttp(const HttpRequest& request) {
  if (request.path == "/healthz") {
    if (request.method != "GET") {
      return JsonError(405, Status::InvalidArgument("use GET"));
    }
    HttpResponse response;
    response.content_type = "text/plain";
    response.body = "ok\n";
    return response;
  }
  if (request.path == "/metrics") {
    if (request.method != "GET") {
      return JsonError(405, Status::InvalidArgument("use GET"));
    }
    HttpResponse response;
    response.content_type = "text/plain; version=0.0.4";
    response.body = metrics_.RenderPrometheus();
    return response;
  }
  if (request.path == "/v1/predict") {
    if (request.method != "POST") {
      return JsonError(405, Status::InvalidArgument("use POST"));
    }
    return HandlePredict(request);
  }
  if (request.path == "/v1/models" ||
      request.path.rfind("/v1/models/", 0) == 0) {
    return HandleModels(request);
  }
  return JsonError(404, Status::NotFound("no route for " + request.path));
}

HttpResponse PredictionService::HandlePredict(const HttpRequest& request) {
  auto parsed_or = ParsePredictRequest(request.body);
  if (!parsed_or.ok()) {
    metrics_.errors_total.fetch_add(1, std::memory_order_relaxed);
    return StatusError(parsed_or.status());
  }
  auto response_or = Predict(parsed_or.value());
  if (!response_or.ok()) {
    // Registry misses count as errors here; executor-side failures were
    // already counted by the executor itself.
    if (response_or.status().code() == StatusCode::kNotFound) {
      metrics_.errors_total.fetch_add(1, std::memory_order_relaxed);
    }
    return StatusError(response_or.status());
  }
  std::string body = "{\"predictions\":[";
  const PredictResponse& response = response_or.value();
  for (size_t i = 0; i < response.rows.size(); ++i) {
    if (i > 0) body.push_back(',');
    body += RowResultToJson(response.rows[i]);
  }
  body += "]}";
  HttpResponse http;
  http.body = std::move(body);
  return http;
}

HttpResponse PredictionService::HandleModels(const HttpRequest& request) {
  if (request.path == "/v1/models") {
    if (request.method != "GET") {
      return JsonError(405, Status::InvalidArgument("use GET"));
    }
    JsonValue body = JsonValue::Object();
    JsonValue list = JsonValue::Array();
    for (const auto& info : registry_.List()) {
      JsonValue entry = JsonValue::Object();
      entry.Set("name", JsonValue::String(info.name));
      entry.Set("version", JsonValue::String(info.version));
      entry.Set("active", JsonValue::Bool(info.active));
      list.Append(std::move(entry));
    }
    body.Set("models", std::move(list));
    HttpResponse response;
    response.body = body.Dump();
    return response;
  }

  if (request.method != "POST") {
    return JsonError(405, Status::InvalidArgument("use POST"));
  }
  // Grammar: /v1/models/{name}/{version}:load  or  /v1/models/{name}:rollback
  std::string rest = request.path.substr(std::string("/v1/models/").size());
  const size_t colon = rest.rfind(':');
  if (colon == std::string::npos) {
    return JsonError(
        404, Status::NotFound("expected ...:load or ...:rollback"));
  }
  const std::string verb = rest.substr(colon + 1);
  rest = rest.substr(0, colon);

  if (verb == "rollback") {
    if (rest.empty() || rest.find('/') != std::string::npos) {
      return JsonError(400,
                       Status::InvalidArgument("rollback takes a bare name"));
    }
    const Status status = registry_.Rollback(rest);
    if (!status.ok()) return StatusError(status);
    HttpResponse response;
    response.body = "{\"status\":\"ok\"}";
    return response;
  }
  if (verb != "load") {
    return JsonError(404, Status::NotFound("unknown verb ':" + verb + "'"));
  }
  const size_t slash = rest.find('/');
  if (slash == std::string::npos || slash == 0 || slash + 1 >= rest.size() ||
      rest.find('/', slash + 1) != std::string::npos) {
    return JsonError(
        400, Status::InvalidArgument("expected /v1/models/{name}/{version}:load"));
  }
  const std::string name = rest.substr(0, slash);
  const std::string version = rest.substr(slash + 1);

  auto doc_or = JsonValue::Parse(request.body);
  if (!doc_or.ok()) return StatusError(doc_or.status());
  const JsonValue& doc = doc_or.value();
  if (!doc.is_object()) {
    return StatusError(Status::InvalidArgument("body must be a JSON object"));
  }
  const JsonValue* kind = doc.Find("kind");
  const JsonValue* model_path = doc.Find("model_path");
  const JsonValue* disc_path = doc.Find("discretization_path");
  if (kind == nullptr || !kind->is_string() ||
      (kind->str() != "rcbt" && kind->str() != "cba")) {
    return StatusError(
        Status::InvalidArgument("'kind' must be \"rcbt\" or \"cba\""));
  }
  if (model_path == nullptr || !model_path->is_string() ||
      disc_path == nullptr || !disc_path->is_string()) {
    return StatusError(Status::InvalidArgument(
        "'model_path' and 'discretization_path' must be strings"));
  }
  const Status status = registry_.Load(
      name, version,
      kind->str() == "rcbt" ? ServableModel::Kind::kRcbt
                            : ServableModel::Kind::kCba,
      model_path->str(), disc_path->str());
  if (!status.ok()) return StatusError(status);
  HttpResponse response;
  response.body = "{\"status\":\"ok\",\"name\":" + JsonQuote(name) +
                  ",\"version\":" + JsonQuote(version) + "}";
  return response;
}

}  // namespace topkrgs
