#ifndef TOPKRGS_SERVE_HTTP_H_
#define TOPKRGS_SERVE_HTTP_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "util/lock_ranks.h"
#include "util/safe_math.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace topkrgs {

struct HttpRequest {
  std::string method;  // uppercased by the parser ("GET", "POST", ...)
  std::string path;    // path only; the query string is stripped into query
  std::string query;   // bytes after '?', undecoded ("" when absent)
  std::vector<std::pair<std::string, std::string>> headers;  // names lowered
  std::string body;

  // Returns a pointer into this request's `headers` storage — it dangles
  // if the HttpRequest is a temporary.
  const std::string* FindHeader(
      const std::string& lower_name) const TKRGS_LIFETIME_BOUND {
    for (const auto& [name, value] : headers) {
      if (name == lower_name) return &value;
    }
    return nullptr;
  }
};

struct HttpResponse {
  int status_code = 200;
  std::string content_type = "application/json";
  std::string body;
};

/// Parses one HTTP/1.1 request out of `data`. Returns the request and
/// stores the total bytes consumed in `*consumed`; NotFound means "need
/// more bytes" (incomplete request — not an error), InvalidArgument means
/// the bytes can never become a valid request. Enforced limits: header
/// block <= 64 KiB, Content-Length <= `max_body` (default 8 MiB).
[[nodiscard]] StatusOr<HttpRequest> ParseHttpRequest(std::string_view data, size_t* consumed,
                                       size_t max_body = 8u << 20);

/// Serializes a response with Content-Length and Connection: close.
std::string SerializeHttpResponse(const HttpResponse& response);

/// A deliberately small HTTP/1.1 server: one accept thread, one thread per
/// connection, one request per connection (Connection: close). That is
/// not a C10K design — it is the minimal dependency-free front end for
/// the prediction service, whose concurrency lives in PredictionExecutor;
/// the per-connection thread mostly just parses, submits, and waits.
class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  explicit HttpServer(Handler handler) : handler_(std::move(handler)) {}
  ~HttpServer() { Stop(); }

  /// Binds 127.0.0.1:`port` (0 = ephemeral) and starts the accept loop.
  Status Start(uint16_t port);

  /// The bound port (after Start) — how a test using --port 0 finds the
  /// server. Atomic: a monitoring thread may ask for the port while the
  /// controlling thread is still inside Start (the thread-safety
  /// annotation pass flagged the previous plain field as the one shared
  /// mutable member with no guard and no atomicity).
  uint16_t port() const { return port_.load(std::memory_order_acquire); }

  /// Closes the listener, waits for in-flight connections. Idempotent.
  void Stop() EXCLUDES(conn_mu_);

 private:
  void AcceptLoop(int listen_fd) EXCLUDES(conn_mu_);
  void ServeConnection(int fd);

  Handler handler_;
  /// Owned by the controlling thread (Start/Stop); AcceptLoop deliberately
  /// receives the fd by value so it never reads this racing member.
  int listen_fd_ = -1;
  std::atomic<uint16_t> port_{0};
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;
  // Connection threads are detached; Stop() waits until the count drains
  // so the handler (and this object) safely outlive every connection.
  Mutex conn_mu_{lock_rank::kHttpConnTracking, "HttpServer::conn_mu_"};
  CondVar conn_cv_;
  size_t active_connections_ GUARDED_BY(conn_mu_) = 0;
};

}  // namespace topkrgs

#endif  // TOPKRGS_SERVE_HTTP_H_
