#ifndef TOPKRGS_SERVE_METRICS_H_
#define TOPKRGS_SERVE_METRICS_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <string>

#include "util/histogram.h"

namespace topkrgs {

/// Serving metrics, shared by the executor and the HTTP front end. All
/// fields are atomics with relaxed ordering — they are monitoring signals,
/// not synchronization — so any thread can bump them without contention.
///
/// Thread-safety-annotation convention (DESIGN.md §11): a shared mutable
/// field is either GUARDED_BY a mutex or std::atomic. This struct is the
/// all-atomic case, so it carries no GUARDED_BY and needs no lock; adding
/// a non-atomic mutable field here without a guard is exactly what the
/// clang -Wthread-safety build exists to reject.
///
/// Prometheus names rendered by RenderPrometheus:
///   topkrgs_requests_total            predict requests accepted for execution
///   topkrgs_rows_total                individual rows classified
///   topkrgs_errors_total              requests finished with a non-OK status
///                                     (bad payload, unknown model, ...)
///   topkrgs_shed_total                requests rejected at submit: queue full
///   topkrgs_deadline_exceeded_total   requests expired before completion
///   topkrgs_queue_depth               requests currently queued (gauge)
///   topkrgs_models_loaded             model versions resident in the registry
///   topkrgs_request_latency_seconds   histogram: submit-to-completion latency
struct ServeMetrics {
  std::atomic<uint64_t> requests_total{0};
  std::atomic<uint64_t> rows_total{0};
  std::atomic<uint64_t> errors_total{0};
  std::atomic<uint64_t> shed_total{0};
  std::atomic<uint64_t> deadline_exceeded_total{0};
  std::atomic<int64_t> queue_depth{0};
  std::atomic<int64_t> models_loaded{0};
  LatencyHistogram request_latency;

  std::string RenderPrometheus() const {
    auto counter = [](const char* name, const char* help, uint64_t v) {
      char buf[256];
      std::snprintf(buf, sizeof(buf),
                    "# HELP %s %s\n# TYPE %s counter\n%s %llu\n", name, help,
                    name, name, static_cast<unsigned long long>(v));
      return std::string(buf);
    };
    auto gauge = [](const char* name, const char* help, int64_t v) {
      char buf[256];
      std::snprintf(buf, sizeof(buf),
                    "# HELP %s %s\n# TYPE %s gauge\n%s %lld\n", name, help,
                    name, name, static_cast<long long>(v));
      return std::string(buf);
    };
    std::string out;
    out += counter("topkrgs_requests_total",
                   "Predict requests accepted for execution.",
                   requests_total.load(std::memory_order_relaxed));
    out += counter("topkrgs_rows_total", "Rows classified.",
                   rows_total.load(std::memory_order_relaxed));
    out += counter("topkrgs_errors_total",
                   "Requests finished with a non-OK status.",
                   errors_total.load(std::memory_order_relaxed));
    out += counter("topkrgs_shed_total",
                   "Requests rejected at submit because the queue was full.",
                   shed_total.load(std::memory_order_relaxed));
    out += counter("topkrgs_deadline_exceeded_total",
                   "Requests whose deadline expired before completion.",
                   deadline_exceeded_total.load(std::memory_order_relaxed));
    out += gauge("topkrgs_queue_depth", "Requests currently queued.",
                 queue_depth.load(std::memory_order_relaxed));
    out += gauge("topkrgs_models_loaded",
                 "Model versions resident in the registry.",
                 models_loaded.load(std::memory_order_relaxed));
    out += "# HELP topkrgs_request_latency_seconds Submit-to-completion "
           "latency of executed requests.\n"
           "# TYPE topkrgs_request_latency_seconds histogram\n";
    out += request_latency.RenderPrometheus("topkrgs_request_latency_seconds");
    return out;
  }
};

}  // namespace topkrgs

#endif  // TOPKRGS_SERVE_METRICS_H_
