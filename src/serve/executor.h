#ifndef TOPKRGS_SERVE_EXECUTOR_H_
#define TOPKRGS_SERVE_EXECUTOR_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "serve/metrics.h"
#include "serve/model_registry.h"
#include "util/hot_path.h"
#include "util/lock_ranks.h"
#include "util/thread_annotations.h"
#include "util/timer.h"

namespace topkrgs {

/// One discretize-and-classify request: a resolved model plus a batch of
/// continuous gene-value rows. `deadline` bounds submit-to-completion; a
/// request that expires in the queue (or mid-batch) fails with
/// DeadlineExceeded instead of burning worker time.
struct PredictRequest {
  std::shared_ptr<const ServableModel> model;
  std::vector<std::vector<double>> rows;
  Deadline deadline;  // default: unlimited
};

struct PredictResponse {
  std::vector<ServableModel::RowResult> rows;
};

/// A fixed worker pool draining a bounded request queue.
///
/// Load shedding: Submit on a full queue fails fast with ResourceExhausted
/// — the request never queues, so a saturated server degrades into cheap
/// rejections instead of unbounded latency.
///
/// Batching: a woken worker drains every queued request in one critical
/// section and executes them back to back, amortizing one wakeup over the
/// whole backlog. Under concurrent load this is where the throughput over
/// one synchronous caller comes from.
///
/// Determinism: execution order never affects results — requests touch
/// only the immutable ServableModel they carry — so responses are
/// identical to calling ServableModel::Predict inline (and therefore to
/// the batch CLI path).
class PredictionExecutor {
 public:
  struct Options {
    uint32_t workers = 4;
    size_t queue_capacity = 256;
    /// Testing hook: start with the workers refusing to dequeue, so tests
    /// can fill the queue deterministically; Resume() opens the tap.
    bool start_paused = false;
  };

  PredictionExecutor(const Options& options, ServeMetrics* metrics);
  ~PredictionExecutor();

  PredictionExecutor(const PredictionExecutor&) = delete;
  PredictionExecutor& operator=(const PredictionExecutor&) = delete;

  /// Enqueues a request. The returned future resolves to the response, or
  /// to ResourceExhausted (queue full — resolved already at submit),
  /// DeadlineExceeded, or InvalidArgument (a malformed row).
  std::future<StatusOr<PredictResponse>> Submit(PredictRequest request)
      EXCLUDES(mu_);

  /// Submit + wait.
  StatusOr<PredictResponse> Predict(PredictRequest request) EXCLUDES(mu_);

  /// Releases workers paused by Options::start_paused.
  void Resume() EXCLUDES(mu_);

  /// Stops accepting work, drains the queue (pending requests fail with
  /// ResourceExhausted), joins the workers. Idempotent; the destructor
  /// calls it.
  void Shutdown() EXCLUDES(mu_);

  size_t queue_depth() const EXCLUDES(mu_);

 private:
  struct Task {
    PredictRequest request;
    std::promise<StatusOr<PredictResponse>> promise;
    std::chrono::steady_clock::time_point submitted;
  };

  void WorkerLoop() EXCLUDES(mu_);
  TKRGS_HOT StatusOr<PredictResponse> Execute(
      const PredictRequest& request) const;
  void Finish(Task* task, StatusOr<PredictResponse> result);

  const Options options_;
  /// Pool size resolved up front: WorkerLoop reads it while the
  /// constructor is still growing workers_, so it must not touch the
  /// vector itself.
  const size_t num_workers_;
  ServeMetrics* const metrics_;

  mutable Mutex mu_{lock_rank::kExecutorQueue, "PredictionExecutor::mu_"};
  CondVar cv_;
  std::deque<Task> queue_ GUARDED_BY(mu_);
  bool paused_ GUARDED_BY(mu_) = false;
  bool stopping_ GUARDED_BY(mu_) = false;
  /// Touched only by the constructor and (after the workers observed
  /// stopping_ and exited) by Shutdown — never by the workers themselves,
  /// so it needs no guard; thread joining is its synchronization.
  std::vector<std::thread> workers_;
};

}  // namespace topkrgs

#endif  // TOPKRGS_SERVE_EXECUTOR_H_
