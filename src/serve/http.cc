#include "serve/http.h"

#include <algorithm>
#include <cctype>

#include "util/io.h"
#include "util/socket.h"

namespace topkrgs {

namespace {

constexpr size_t kMaxHeaderBytes = 64u << 10;

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

const char* ReasonPhrase(int code) {
  switch (code) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 409: return "Conflict";
    case 413: return "Payload Too Large";
    case 429: return "Too Many Requests";
    case 500: return "Internal Server Error";
    case 504: return "Gateway Timeout";
    default: return "Unknown";
  }
}

}  // namespace

StatusOr<HttpRequest> ParseHttpRequest(std::string_view data, size_t* consumed,
                                       size_t max_body) {
  const size_t header_end = data.find("\r\n\r\n");
  if (header_end == std::string_view::npos) {
    if (data.size() > kMaxHeaderBytes) {
      return Status::InvalidArgument("header block too large");
    }
    return Status::NotFound("incomplete request");  // need more bytes
  }
  if (header_end > kMaxHeaderBytes) {
    return Status::InvalidArgument("header block too large");
  }

  const std::string_view head = data.substr(0, header_end);
  const size_t line_end = head.find("\r\n");
  const std::string_view request_line =
      line_end == std::string_view::npos ? head : head.substr(0, line_end);

  // "METHOD SP target SP HTTP/1.x"
  const size_t sp1 = request_line.find(' ');
  const size_t sp2 =
      sp1 == std::string_view::npos ? sp1 : request_line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos) {
    return Status::InvalidArgument("malformed request line");
  }
  const std::string_view version = request_line.substr(sp2 + 1);
  if (version != "HTTP/1.1" && version != "HTTP/1.0") {
    return Status::InvalidArgument("unsupported HTTP version");
  }

  HttpRequest request;
  request.method = std::string(request_line.substr(0, sp1));
  std::transform(request.method.begin(), request.method.end(),
                 request.method.begin(),
                 [](unsigned char c) { return static_cast<char>(std::toupper(c)); });
  std::string_view target = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
  if (target.empty() || target[0] != '/') {
    return Status::InvalidArgument("malformed request target");
  }
  const size_t qmark = target.find('?');
  if (qmark != std::string_view::npos) {
    request.query = std::string(target.substr(qmark + 1));
    target = target.substr(0, qmark);
  }
  request.path = std::string(target);

  size_t body_length = 0;
  size_t pos = line_end == std::string_view::npos ? head.size() : line_end + 2;
  while (pos < head.size()) {
    size_t eol = head.find("\r\n", pos);
    if (eol == std::string_view::npos) eol = head.size();
    const std::string_view line = head.substr(pos, eol - pos);
    pos = eol + 2;
    const size_t colon = line.find(':');
    if (colon == std::string_view::npos) {
      return Status::InvalidArgument("malformed header line");
    }
    std::string name = ToLower(Trim(line.substr(0, colon)));
    std::string value(Trim(line.substr(colon + 1)));
    if (name == "content-length") {
      auto length = ParseUint(value);
      if (!length.ok() || length.value() > max_body) {
        return Status::InvalidArgument("bad content-length");
      }
      body_length = static_cast<size_t>(length.value());
    }
    if (name == "transfer-encoding") {
      // One request per connection with explicit lengths only; chunked
      // bodies are out of scope for this embedded endpoint.
      return Status::InvalidArgument("transfer-encoding not supported");
    }
    request.headers.emplace_back(std::move(name), std::move(value));
  }

  const size_t total = header_end + 4 + body_length;
  if (data.size() < total) return Status::NotFound("incomplete request");
  request.body = std::string(data.substr(header_end + 4, body_length));
  if (consumed != nullptr) *consumed = total;
  return request;
}

std::string SerializeHttpResponse(const HttpResponse& response) {
  std::string out = "HTTP/1.1 " + std::to_string(response.status_code) + " " +
                    ReasonPhrase(response.status_code) + "\r\n";
  out += "Content-Type: " + response.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += response.body;
  return out;
}

Status HttpServer::Start(uint16_t port) {
  if (listen_fd_ >= 0) {
    return Status::FailedPrecondition("server already started");
  }
  uint16_t bound_port = 0;
  auto fd_or = ListenTcp(port, &bound_port);
  if (!fd_or.ok()) return fd_or.status();
  port_.store(bound_port, std::memory_order_release);
  listen_fd_ = fd_or.value();
  stopping_.store(false, std::memory_order_relaxed);
  // The loop gets the fd by value: Stop() writes listen_fd_ while the
  // loop runs, and the loop must never read that racing member.
  accept_thread_ = std::thread([this, fd = listen_fd_] { AcceptLoop(fd); });
  return Status::OK();
}

void HttpServer::Stop() {
  if (listen_fd_ < 0) return;
  stopping_.store(true, std::memory_order_relaxed);
  // shutdown() — not close() — is what wakes a thread blocked in accept()
  // on Linux; a plain close would leave the accept loop sleeping forever.
  // The fd itself is released only after the loop has exited.
  ShutdownSocket(listen_fd_);
  if (accept_thread_.joinable()) accept_thread_.join();
  CloseSocket(listen_fd_);
  listen_fd_ = -1;
  MutexLock lock(conn_mu_);
  // Explicit loop instead of the predicate overload so the guarded read
  // of active_connections_ is visible to the thread-safety analysis.
  while (active_connections_ != 0) conn_cv_.Wait(lock);
}

void HttpServer::AcceptLoop(int listen_fd) {
  for (;;) {
    auto conn_or = AcceptConn(listen_fd);
    if (!conn_or.ok()) return;  // listener closed (Stop) or fatal
    const int fd = conn_or.value();
    if (stopping_.load(std::memory_order_relaxed)) {
      CloseSocket(fd);
      return;
    }
    {
      MutexLock lock(conn_mu_);
      ++active_connections_;
    }
    std::thread([this, fd] {
      ServeConnection(fd);
      MutexLock lock(conn_mu_);
      --active_connections_;
      conn_cv_.NotifyAll();
    }).detach();
  }
}

void HttpServer::ServeConnection(int fd) {
  std::string buffer;
  HttpResponse response;
  bool have_request = false;
  HttpRequest request;
  // Read until one full request is buffered (one request per connection).
  for (;;) {
    auto chunk_or = RecvSome(fd, 64u << 10);
    if (!chunk_or.ok()) {
      CloseSocket(fd);
      return;
    }
    const bool eof = chunk_or.value().empty();
    buffer += chunk_or.value();
    size_t consumed = 0;
    auto request_or = ParseHttpRequest(buffer, &consumed);
    if (request_or.ok()) {
      request = std::move(request_or).value();
      have_request = true;
      break;
    }
    if (request_or.status().code() != StatusCode::kNotFound || eof) {
      // Malformed bytes, oversized headers, or the peer hung up mid
      // request: answer 400 when we can still write, then give up.
      response.status_code = 400;
      response.body = "{\"error\":\"" + std::string("bad request") + "\"}";
      break;
    }
  }
  if (have_request) response = handler_(request);
  // Discarding the send Status is safe: the peer may legitimately have
  // hung up before reading the response, and there is no one left to
  // report the failure to — the connection closes either way.
  (void)SendAll(fd, SerializeHttpResponse(response));
  CloseSocket(fd);
}

}  // namespace topkrgs
