#include "serve/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>

namespace topkrgs {

namespace {

/// Maximum nesting depth Parse accepts. The recursive-descent parser uses
/// the call stack, so unbounded depth is a stack-exhaustion crash on
/// hostile input like ten thousand '['.
constexpr int kMaxDepth = 64;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  StatusOr<JsonValue> ParseDocument() {
    SkipWhitespace();
    auto value = ParseValue(0);
    if (!value.ok()) return value.status();
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Err("trailing garbage after JSON document");
    }
    return value;
  }

 private:
  Status Err(const std::string& msg) const {
    return Status::InvalidArgument("json at byte " + std::to_string(pos_) +
                                   ": " + msg);
  }

  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }

  void SkipWhitespace() {
    while (!AtEnd()) {
      const char c = Peek();
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (AtEnd() || Peek() != c) return false;
    ++pos_;
    return true;
  }

  bool ConsumeLiteral(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  StatusOr<JsonValue> ParseValue(int depth) {
    if (depth > kMaxDepth) return Err("nesting too deep");
    if (AtEnd()) return Err("unexpected end of input");
    switch (Peek()) {
      case 'n':
        if (ConsumeLiteral("null")) return JsonValue::Null();
        return Err("invalid literal");
      case 't':
        if (ConsumeLiteral("true")) return JsonValue::Bool(true);
        return Err("invalid literal");
      case 'f':
        if (ConsumeLiteral("false")) return JsonValue::Bool(false);
        return Err("invalid literal");
      case '"':
        return ParseString();
      case '[':
        return ParseArray(depth);
      case '{':
        return ParseObject(depth);
      default:
        return ParseNumber();
    }
  }

  StatusOr<JsonValue> ParseNumber() {
    const size_t start = pos_;
    if (Consume('-')) {
    }
    if (AtEnd() || Peek() < '0' || Peek() > '9') return Err("invalid number");
    // Leading zero may not be followed by more digits ("01" is invalid).
    if (Peek() == '0') {
      ++pos_;
    } else {
      while (!AtEnd() && Peek() >= '0' && Peek() <= '9') ++pos_;
    }
    if (Consume('.')) {
      if (AtEnd() || Peek() < '0' || Peek() > '9') return Err("invalid number");
      while (!AtEnd() && Peek() >= '0' && Peek() <= '9') ++pos_;
    }
    if (!AtEnd() && (Peek() == 'e' || Peek() == 'E')) {
      ++pos_;
      if (!AtEnd() && (Peek() == '+' || Peek() == '-')) ++pos_;
      if (AtEnd() || Peek() < '0' || Peek() > '9') return Err("invalid number");
      while (!AtEnd() && Peek() >= '0' && Peek() <= '9') ++pos_;
    }
    double value = 0.0;
    const auto result = std::from_chars(text_.data() + start,
                                        text_.data() + pos_, value);
    if (result.ec != std::errc() || !std::isfinite(value)) {
      // Overflowing literals like 1e999 are syntactically valid JSON but a
      // non-finite double would poison score arithmetic downstream.
      return Err("number out of range");
    }
    return JsonValue::Number(value);
  }

  /// Appends the UTF-8 encoding of a code point.
  static void AppendUtf8(uint32_t cp, std::string* out) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  StatusOr<uint32_t> ParseHex4() {
    if (pos_ + 4 > text_.size()) return Err("truncated \\u escape");
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + i];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<uint32_t>(c - '0');  // NOLINT(cast: in [0, 9])
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<uint32_t>(c - 'a' + 10);  // NOLINT(cast: in [10, 15])
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<uint32_t>(c - 'A' + 10);  // NOLINT(cast: in [10, 15])
      } else {
        return Err("invalid \\u escape");
      }
    }
    pos_ += 4;
    return value;
  }

  StatusOr<JsonValue> ParseString() {
    ++pos_;  // opening quote
    std::string out;
    for (;;) {
      if (AtEnd()) return Err("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return JsonValue::String(std::move(out));
      // NOLINT(cast: char -> unsigned char is a byte reinterpretation,
      // not a narrowing — the control-range test needs the raw byte)
      if (static_cast<unsigned char>(c) < 0x20) {
        return Err("unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (AtEnd()) return Err("truncated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          auto hi = ParseHex4();
          if (!hi.ok()) return hi.status();
          uint32_t cp = hi.value();
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: must pair with a following \uDC00..\uDFFF.
            if (!ConsumeLiteral("\\u")) return Err("unpaired surrogate");
            auto lo = ParseHex4();
            if (!lo.ok()) return lo.status();
            if (lo.value() < 0xDC00 || lo.value() > 0xDFFF) {
              return Err("invalid low surrogate");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo.value() - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return Err("unpaired surrogate");
          }
          AppendUtf8(cp, &out);
          break;
        }
        default:
          return Err("invalid escape character");
      }
    }
  }

  StatusOr<JsonValue> ParseArray(int depth) {
    ++pos_;  // '['
    JsonValue out = JsonValue::Array();
    SkipWhitespace();
    if (Consume(']')) return out;
    for (;;) {
      SkipWhitespace();
      auto value = ParseValue(depth + 1);
      if (!value.ok()) return value.status();
      out.Append(std::move(value).value());
      SkipWhitespace();
      if (Consume(']')) return out;
      if (!Consume(',')) return Err("expected ',' or ']' in array");
    }
  }

  StatusOr<JsonValue> ParseObject(int depth) {
    ++pos_;  // '{'
    JsonValue out = JsonValue::Object();
    SkipWhitespace();
    if (Consume('}')) return out;
    for (;;) {
      SkipWhitespace();
      if (AtEnd() || Peek() != '"') return Err("expected object key");
      auto key = ParseString();
      if (!key.ok()) return key.status();
      SkipWhitespace();
      if (!Consume(':')) return Err("expected ':' after object key");
      SkipWhitespace();
      auto value = ParseValue(depth + 1);
      if (!value.ok()) return value.status();
      out.Set(key.value().str(), std::move(value).value());
      SkipWhitespace();
      if (Consume('}')) return out;
      if (!Consume(',')) return Err("expected ',' or '}' in object");
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

StatusOr<JsonValue> JsonValue::Parse(std::string_view text) {
  return Parser(text).ParseDocument();
}

std::string JsonQuote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        // NOLINT(cast: char -> unsigned char is a byte reinterpretation,
        // not a narrowing — the control-range test and the \u escape need
        // the raw byte value)
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          // NOLINT(cast: same byte reinterpretation, widened for %x)
          const unsigned byte = static_cast<unsigned char>(c);
          std::snprintf(buf, sizeof(buf), "\\u%04x", byte);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

void JsonValue::DumpTo(std::string* out) const {
  switch (kind_) {
    case Kind::kNull:
      *out += "null";
      return;
    case Kind::kBool:
      *out += bool_ ? "true" : "false";
      return;
    case Kind::kNumber: {
      char buf[32];
      const auto result =
          std::to_chars(buf, buf + sizeof(buf), number_);
      out->append(buf, result.ptr);
      return;
    }
    case Kind::kString:
      *out += JsonQuote(string_);
      return;
    case Kind::kArray: {
      out->push_back('[');
      for (size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out->push_back(',');
        array_[i].DumpTo(out);
      }
      out->push_back(']');
      return;
    }
    case Kind::kObject: {
      out->push_back('{');
      for (size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) out->push_back(',');
        *out += JsonQuote(members_[i].first);
        out->push_back(':');
        members_[i].second.DumpTo(out);
      }
      out->push_back('}');
      return;
    }
  }
}

std::string JsonValue::Dump() const {
  std::string out;
  DumpTo(&out);
  return out;
}

}  // namespace topkrgs
