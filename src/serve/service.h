#ifndef TOPKRGS_SERVE_SERVICE_H_
#define TOPKRGS_SERVE_SERVICE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "serve/executor.h"
#include "serve/http.h"
#include "serve/metrics.h"
#include "serve/model_registry.h"
#include "util/status.h"

namespace topkrgs {

/// A POST /v1/predict payload after JSON validation, before model
/// resolution. Split out (rather than folded into HandleHttp) because it
/// is the network-facing parser of untrusted bytes: fuzz_predict_request
/// drives exactly this function.
struct ParsedPredictRequest {
  std::string model = "default";
  std::string version;  // "" = active version
  std::vector<std::vector<double>> rows;
  double deadline_ms = 0;  // 0 = unlimited
};

/// Parses + validates a predict request body:
///   {"rows": [[<finite number>*]+], "model"?: str, "version"?: str,
///    "deadline_ms"?: num > 0}
/// Limits: <= 4096 rows, <= 2^20 values per row, unknown keys rejected
/// (a typo like "modle" must not silently hit the default model).
[[nodiscard]] StatusOr<ParsedPredictRequest> ParsePredictRequest(std::string_view body);

/// The serving endpoint set, glued onto HttpServer:
///   POST /v1/predict                      classify rows (JSON in/out)
///   POST /v1/models/{name}/{version}:load load + hot-swap a model
///   POST /v1/models/{name}:rollback       revert the last swap
///   GET  /v1/models                       list loaded (name, version)s
///   GET  /healthz                         liveness: "ok"
///   GET  /metrics                         Prometheus text exposition
class PredictionService {
 public:
  struct Options {
    uint32_t workers = 4;
    size_t queue_capacity = 256;
    /// Cap applied when a request carries no deadline_ms; 0 = unlimited.
    double default_deadline_ms = 0;
  };

  explicit PredictionService(const Options& options);

  ModelRegistry& registry() { return registry_; }
  PredictionExecutor& executor() { return executor_; }
  ServeMetrics& metrics() { return metrics_; }

  /// Starts the HTTP front end on 127.0.0.1:`port` (0 = ephemeral).
  Status Start(uint16_t port);
  uint16_t port() const { return http_ == nullptr ? 0 : http_->port(); }
  void Stop();

  /// The route dispatcher, exposed for in-process tests (drive the full
  /// HTTP semantics without sockets).
  HttpResponse HandleHttp(const HttpRequest& request);

  /// In-process client: resolve + submit + wait, no HTTP. The bench uses
  /// this to measure executor throughput without socket noise.
  StatusOr<PredictResponse> Predict(const ParsedPredictRequest& request);

 private:
  HttpResponse HandlePredict(const HttpRequest& request);
  HttpResponse HandleModels(const HttpRequest& request);

  ServeMetrics metrics_;
  ModelRegistry registry_;
  PredictionExecutor executor_;
  std::unique_ptr<HttpServer> http_;
  const double default_deadline_ms_;
};

/// Maps a Status to the HTTP status code the endpoints answer with.
int HttpCodeForStatus(const Status& status);

/// Renders one classified row as the response JSON object.
std::string RowResultToJson(const ServableModel::RowResult& row);

}  // namespace topkrgs

#endif  // TOPKRGS_SERVE_SERVICE_H_
