#ifndef TOPKRGS_SERVE_MODEL_REGISTRY_H_
#define TOPKRGS_SERVE_MODEL_REGISTRY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "classify/cba.h"
#include "classify/rcbt.h"
#include "discretize/entropy_discretizer.h"
#include "serve/metrics.h"
#include "util/hot_path.h"
#include "util/lock_ranks.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace topkrgs {

/// One fully validated, immutable model ready to serve: the fitted
/// discretization plus a CBA or RCBT classifier over the same item
/// universe. Everything is precomputed at load time; after construction
/// the object is strictly read-only, so any number of worker threads can
/// Predict() on one instance concurrently with no locking (the classifier
/// Predict paths are const and touch no shared mutable state — pinned by
/// the ThreadSafety tests under TSan).
class ServableModel {
 public:
  enum class Kind { kRcbt, kCba };

  /// Builds from already-parsed artifacts. Validates the cross-artifact
  /// contract the CLI load path enforces: the model's item universe must
  /// equal the discretization's (FailedPrecondition otherwise — each file
  /// is valid alone, the pair is inconsistent).
  static StatusOr<std::shared_ptr<const ServableModel>> Create(
      std::string name, std::string version, Discretization disc,
      std::optional<RcbtClassifier> rcbt, std::optional<CbaClassifier> cba,
      uint32_t model_num_items);

  const std::string& name() const { return name_; }
  const std::string& version() const { return version_; }
  Kind kind() const { return kind_; }
  uint32_t num_items() const { return num_items_; }
  /// Minimum gene-vector length a request row must provide.
  uint32_t min_genes() const { return min_genes_; }
  const Discretization& discretization() const { return disc_; }

  /// One classified row. `scores` are the deciding classifier's aggregated
  /// per-class voting scores (RCBT; for CBA the matched rule's confidence
  /// at its consequent), `matched_rules` the lower-bound rules that fired
  /// in the deciding classifier, rendered in the model file's rule syntax.
  struct RowResult {
    ClassLabel label = 0;
    uint32_t classifier_index = 0;  // 1-based; 0 = default class fired
    bool used_default = false;
    std::vector<double> scores;
    std::vector<std::string> matched_rules;
  };

  /// Discretizes one continuous gene vector and classifies it. The row
  /// must have at least min_genes() values (InvalidArgument otherwise) and
  /// every value must be finite. Deterministically identical to the batch
  /// CLI path (Discretization::Apply + classifier Predict).
  TKRGS_HOT StatusOr<RowResult> Predict(
      const std::vector<double>& gene_values) const;

 private:
  ServableModel() = default;

  std::string name_;
  std::string version_;
  Kind kind_ = Kind::kRcbt;
  uint32_t num_items_ = 0;
  uint32_t min_genes_ = 0;
  Discretization disc_;
  std::optional<RcbtClassifier> rcbt_;
  std::optional<CbaClassifier> cba_;
};

/// The registry maps (name, version) to loaded models and tracks one
/// *active* version per name. Readers (request threads) resolve a model to
/// a shared_ptr<const ServableModel> and keep serving on it even while an
/// operator hot-swaps the active version — the old version stays alive
/// until its last in-flight request drops the reference. All registry
/// state is GUARDED_BY one reader/writer mutex (thread-safety-annotated:
/// clang verifies every models_ access holds it): mutators take the write
/// lock, the hot Get/List resolution path takes the shared read lock, so
/// concurrent request threads never serialize against each other — only
/// against the rare hot-swap. Critical sections are pointer swaps and map
/// lookups, never model loading or prediction.
class ModelRegistry {
 public:
  explicit ModelRegistry(ServeMetrics* metrics = nullptr)
      : metrics_(metrics) {}

  /// Parses + validates the artifacts from disk through the hardened
  /// model_io boundaries, precomputes the servable state, inserts it under
  /// (name, version) and makes it the active version (hot-swap). The
  /// previously active version is remembered for Rollback. Fails without
  /// touching the registry when any artifact is invalid or the pair is
  /// inconsistent. Re-loading an existing (name, version) replaces it.
  Status Load(const std::string& name, const std::string& version,
              ServableModel::Kind kind, const std::string& model_path,
              const std::string& discretization_path) EXCLUDES(mu_);

  /// Inserts an already-built model (in-process embedding path; the bench
  /// and tests use this to serve freshly trained classifiers without a
  /// round-trip through the filesystem).
  Status Insert(std::shared_ptr<const ServableModel> model) EXCLUDES(mu_);

  /// Makes an already-loaded version the active one.
  Status Activate(const std::string& name, const std::string& version)
      EXCLUDES(mu_);

  /// Reverts `name` to the version that was active before the last
  /// Activate/Load swap. FailedPrecondition when there is no history.
  Status Rollback(const std::string& name) EXCLUDES(mu_);

  /// Drops one loaded version. FailedPrecondition when it is active.
  Status Unload(const std::string& name, const std::string& version)
      EXCLUDES(mu_);

  /// Resolves a model; empty `version` means the active version.
  StatusOr<std::shared_ptr<const ServableModel>> Get(
      const std::string& name, const std::string& version = "") const
      EXCLUDES(mu_);

  struct ModelInfo {
    std::string name;
    std::string version;
    bool active = false;
  };
  std::vector<ModelInfo> List() const EXCLUDES(mu_);

 private:
  struct Entry {
    std::map<std::string, std::shared_ptr<const ServableModel>> versions;
    std::shared_ptr<const ServableModel> active;
    std::shared_ptr<const ServableModel> previous;  // rollback target
  };

  mutable SharedMutex mu_{lock_rank::kModelRegistry, "ModelRegistry::mu_"};
  std::map<std::string, Entry> models_ GUARDED_BY(mu_);
  ServeMetrics* metrics_;
};

}  // namespace topkrgs

#endif  // TOPKRGS_SERVE_MODEL_REGISTRY_H_
