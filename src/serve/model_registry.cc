#include "serve/model_registry.h"

#include <atomic>
#include <cmath>

#include "classify/model_io.h"

namespace topkrgs {

namespace {

/// Matched rules are reported in the model file's rule syntax
/// ("rule <consequent> <sup> <asup> <items...>") so a response can be
/// cross-checked against the persisted artifact byte-for-byte.
std::string RenderRule(const Rule& rule) {
  std::string line =
      "rule " + std::to_string(int{rule.consequent}) + ' ' +
      std::to_string(rule.support) + ' ' +
      std::to_string(rule.antecedent_support);
  rule.antecedent.ForEach([&](size_t item) {
    line += ' ';
    line += std::to_string(item);
  });
  return line;
}

}  // namespace

StatusOr<std::shared_ptr<const ServableModel>> ServableModel::Create(
    std::string name, std::string version, Discretization disc,
    std::optional<RcbtClassifier> rcbt, std::optional<CbaClassifier> cba,
    uint32_t model_num_items) {
  if (name.empty() || version.empty()) {
    return Status::InvalidArgument("model name and version must be non-empty");
  }
  if (rcbt.has_value() == cba.has_value()) {
    return Status::InvalidArgument(
        "exactly one of rcbt/cba must be provided");
  }
  // Same cross-artifact gate as the CLI load path: rule antecedents and
  // discretized rows must live in the same item universe, or Predict would
  // hit the bitset universe-mismatch abort.
  if (model_num_items != disc.num_items()) {
    return Status::FailedPrecondition(
        "model expects " + std::to_string(model_num_items) +
        " items but the discretization defines " +
        std::to_string(disc.num_items()));
  }
  auto model = std::shared_ptr<ServableModel>(new ServableModel());
  model->name_ = std::move(name);
  model->version_ = std::move(version);
  model->kind_ = rcbt.has_value() ? Kind::kRcbt : Kind::kCba;
  model->num_items_ = model_num_items;
  model->min_genes_ = disc.selected_genes().empty()
                          ? 0
                          : disc.selected_genes().back() + 1;
  model->disc_ = std::move(disc);
  model->rcbt_ = std::move(rcbt);
  model->cba_ = std::move(cba);
  return std::shared_ptr<const ServableModel>(std::move(model));
}

StatusOr<ServableModel::RowResult> ServableModel::Predict(
    const std::vector<double>& gene_values) const {
  if (gene_values.size() < min_genes_) {
    // NOLINT(hotpath: malformed-request reject — formatted once per bad
    // request, never on the accepted per-row path)
    return Status::InvalidArgument(
        "row has " + std::to_string(gene_values.size()) +
        " genes but the model needs at least " + std::to_string(min_genes_));
  }
  for (double v : gene_values) {
    if (!std::isfinite(v)) {
      return Status::InvalidArgument("non-finite expression value");
    }
  }
  // Exactly the batch path: DiscretizeRow is what Discretization::Apply
  // runs per row, so serving and topkrgs-classify agree bit for bit.
  // NOLINT(hotpath: per-row itemset buffer; Predict is stateless by
  // the lock-free serving contract, so there is no scratch to reuse)
  Bitset items(num_items_);
  for (ItemId item : disc_.DiscretizeRow(gene_values)) items.Set(item);

  RowResult out;
  if (kind_ == Kind::kRcbt) {
    RcbtClassifier::Prediction pred = rcbt_->Predict(items);
    out.label = pred.label;
    out.classifier_index = pred.classifier_index;
    out.used_default = pred.used_default;
    out.scores = std::move(pred.scores);
    if (!pred.used_default) {
      const std::vector<Rule>& rules =
          rcbt_->classifier_rules(pred.classifier_index);
      // NOLINT(hotpath: explanation strings render once per matched
      // rule, off the latency-critical label path)
      out.matched_rules.reserve(pred.matched_rules.size());
      for (uint32_t idx : pred.matched_rules) {
        // NOLINT(hotpath: explanation rendering, as above)
        out.matched_rules.push_back(RenderRule(rules[idx]));
      }
    }
  } else {
    const CbaClassifier::Prediction pred = cba_->PredictDetailed(items);
    out.label = pred.label;
    out.used_default = pred.used_default;
    out.classifier_index = pred.used_default ? 0 : 1;
    if (!pred.used_default) {
      // NOLINT(hotpath: tiny per-prediction score vector, O(classes))
      out.scores.assign(static_cast<size_t>(pred.label) + 1, 0.0);
      out.scores[pred.label] = pred.confidence;
      // NOLINT(hotpath: explanation rendering, as above)
      out.matched_rules.push_back(RenderRule(
          cba_->rules()[static_cast<size_t>(pred.matched_rule)]));
    }
  }
  return out;
}

Status ModelRegistry::Load(const std::string& name, const std::string& version,
                           ServableModel::Kind kind,
                           const std::string& model_path,
                           const std::string& discretization_path) {
  auto disc_or = LoadDiscretization(discretization_path);
  if (!disc_or.ok()) return disc_or.status();

  std::optional<RcbtClassifier> rcbt;
  std::optional<CbaClassifier> cba;
  uint32_t model_items = 0;
  if (kind == ServableModel::Kind::kRcbt) {
    auto model_or = LoadRcbtClassifier(model_path, &model_items);
    if (!model_or.ok()) return model_or.status();
    rcbt = std::move(model_or).value();
  } else {
    auto model_or = LoadCbaClassifier(model_path, &model_items);
    if (!model_or.ok()) return model_or.status();
    cba = std::move(model_or).value();
  }
  auto model_or =
      ServableModel::Create(name, version, std::move(disc_or).value(),
                            std::move(rcbt), std::move(cba), model_items);
  if (!model_or.ok()) return model_or.status();
  return Insert(std::move(model_or).value());
}

Status ModelRegistry::Insert(std::shared_ptr<const ServableModel> model) {
  if (model == nullptr) {
    return Status::InvalidArgument("null model");
  }
  WriterMutexLock lock(mu_);
  Entry& entry = models_[model->name()];
  const bool replaced =
      entry.versions.count(model->version()) > 0;
  entry.versions[model->version()] = model;
  // Loading doubles as activation (hot-swap): remember the outgoing active
  // version so Rollback can revert the swap.
  if (entry.active != nullptr && entry.active->version() != model->version()) {
    entry.previous = entry.active;
  }
  entry.active = std::move(model);
  if (metrics_ != nullptr && !replaced) {
    metrics_->models_loaded.fetch_add(1, std::memory_order_relaxed);
  }
  return Status::OK();
}

Status ModelRegistry::Activate(const std::string& name,
                               const std::string& version) {
  WriterMutexLock lock(mu_);
  auto it = models_.find(name);
  if (it == models_.end()) {
    return Status::NotFound("model '" + name + "' not loaded");
  }
  auto vit = it->second.versions.find(version);
  if (vit == it->second.versions.end()) {
    return Status::NotFound("model '" + name + "' has no version '" + version +
                            "'");
  }
  if (it->second.active != vit->second) {
    it->second.previous = it->second.active;
    it->second.active = vit->second;
  }
  return Status::OK();
}

Status ModelRegistry::Rollback(const std::string& name) {
  WriterMutexLock lock(mu_);
  auto it = models_.find(name);
  if (it == models_.end()) {
    return Status::NotFound("model '" + name + "' not loaded");
  }
  if (it->second.previous == nullptr) {
    return Status::FailedPrecondition("model '" + name +
                                      "' has no previous version to roll "
                                      "back to");
  }
  std::swap(it->second.active, it->second.previous);
  return Status::OK();
}

Status ModelRegistry::Unload(const std::string& name,
                             const std::string& version) {
  WriterMutexLock lock(mu_);
  auto it = models_.find(name);
  if (it == models_.end()) {
    return Status::NotFound("model '" + name + "' not loaded");
  }
  auto vit = it->second.versions.find(version);
  if (vit == it->second.versions.end()) {
    return Status::NotFound("model '" + name + "' has no version '" + version +
                            "'");
  }
  if (it->second.active == vit->second) {
    return Status::FailedPrecondition(
        "version '" + version + "' is active; activate another first");
  }
  if (it->second.previous == vit->second) it->second.previous = nullptr;
  it->second.versions.erase(vit);
  if (metrics_ != nullptr) {
    metrics_->models_loaded.fetch_sub(1, std::memory_order_relaxed);
  }
  return Status::OK();
}

StatusOr<std::shared_ptr<const ServableModel>> ModelRegistry::Get(
    const std::string& name, const std::string& version) const {
  ReaderMutexLock lock(mu_);
  auto it = models_.find(name);
  if (it == models_.end()) {
    return Status::NotFound("model '" + name + "' not loaded");
  }
  if (version.empty()) {
    if (it->second.active == nullptr) {
      return Status::NotFound("model '" + name + "' has no active version");
    }
    return it->second.active;
  }
  auto vit = it->second.versions.find(version);
  if (vit == it->second.versions.end()) {
    return Status::NotFound("model '" + name + "' has no version '" + version +
                            "'");
  }
  return vit->second;
}

std::vector<ModelRegistry::ModelInfo> ModelRegistry::List() const {
  ReaderMutexLock lock(mu_);
  std::vector<ModelInfo> out;
  for (const auto& [name, entry] : models_) {
    for (const auto& [version, model] : entry.versions) {
      out.push_back({name, version, model == entry.active});
    }
  }
  return out;
}

}  // namespace topkrgs
